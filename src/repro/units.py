"""Unit constants and formatting helpers.

All internal quantities are stored in SI base units (joules, seconds, farads,
volts, amperes, meters, watts, bytes).  The constants below let configuration
code read naturally, e.g. ``energy_per_cycle=3.0 * pJ`` or
``capacitance=100 * fF``.
"""

from __future__ import annotations

# --- Energy ---------------------------------------------------------------
J = 1.0
mJ = 1e-3
uJ = 1e-6
nJ = 1e-9
pJ = 1e-12
fJ = 1e-15
aJ = 1e-18

# --- Time -----------------------------------------------------------------
s = 1.0
ms = 1e-3
us = 1e-6
ns = 1e-9
ps = 1e-12

# --- Capacitance ----------------------------------------------------------
F = 1.0
uF = 1e-6
nF = 1e-9
pF = 1e-12
fF = 1e-15
aF = 1e-18

# --- Voltage --------------------------------------------------------------
V = 1.0
mV = 1e-3
uV = 1e-6

# --- Current --------------------------------------------------------------
A = 1.0
mA = 1e-3
uA = 1e-6
nA = 1e-9
pA = 1e-12

# --- Power ----------------------------------------------------------------
W = 1.0
mW = 1e-3
uW = 1e-6
nW = 1e-9
pW = 1e-12

# --- Frequency ------------------------------------------------------------
Hz = 1.0
kHz = 1e3
MHz = 1e6
GHz = 1e9

# --- Length / area --------------------------------------------------------
m = 1.0
mm = 1e-3
um = 1e-6
nm = 1e-9
mm2 = 1e-6  # square meters per mm^2
um2 = 1e-12  # square meters per um^2

# --- Data volume ----------------------------------------------------------
B = 1.0
KB = 1024.0
MB = 1024.0 ** 2
GB = 1024.0 ** 3

# --- Physical constants ----------------------------------------------------
BOLTZMANN = 1.380649e-23  # J/K
ROOM_TEMPERATURE = 300.0  # K

_ENERGY_SCALES = (
    (J, "J"),
    (mJ, "mJ"),
    (uJ, "uJ"),
    (nJ, "nJ"),
    (pJ, "pJ"),
    (fJ, "fJ"),
    (aJ, "aJ"),
)

_POWER_SCALES = (
    (W, "W"),
    (mW, "mW"),
    (uW, "uW"),
    (nW, "nW"),
    (pW, "pW"),
)

_TIME_SCALES = (
    (s, "s"),
    (ms, "ms"),
    (us, "us"),
    (ns, "ns"),
    (ps, "ps"),
)


def _format_scaled(value, scales, unit_suffix=""):
    if value == 0:
        return "0 " + scales[-1][1] + unit_suffix
    magnitude = abs(value)
    for scale, label in scales:
        if magnitude >= scale:
            return f"{value / scale:.3g} {label}{unit_suffix}"
    scale, label = scales[-1]
    return f"{value / scale:.3g} {label}{unit_suffix}"


def format_energy(joules: float) -> str:
    """Render an energy in the most natural SI prefix, e.g. ``'3.2 pJ'``."""
    return _format_scaled(joules, _ENERGY_SCALES)


def format_power(watts: float) -> str:
    """Render a power in the most natural SI prefix, e.g. ``'1.3 mW'``."""
    return _format_scaled(watts, _POWER_SCALES)


def format_time(seconds: float) -> str:
    """Render a duration in the most natural SI prefix, e.g. ``'16.7 ms'``."""
    return _format_scaled(seconds, _TIME_SCALES)


def thermal_noise_voltage(capacitance: float,
                          temperature: float = ROOM_TEMPERATURE) -> float:
    """RMS kT/C thermal noise voltage for a sampling capacitor (Eq. 6)."""
    if capacitance <= 0:
        raise ValueError(f"capacitance must be positive, got {capacitance}")
    return (BOLTZMANN * temperature / capacitance) ** 0.5


def capacitance_for_resolution(voltage_swing: float,
                               bits: int,
                               temperature: float = ROOM_TEMPERATURE,
                               sigma_multiplier: float = 3.0) -> float:
    """Minimum capacitance keeping thermal noise below half an LSB (Eq. 6).

    The paper requires ``sigma_multiplier * sigma_thermal < LSB / 2`` with
    ``LSB = voltage_swing / 2**bits``, which solves to
    ``C > kT * (2 * sigma_multiplier * 2**bits / voltage_swing)**2``.
    """
    if voltage_swing <= 0:
        raise ValueError(f"voltage_swing must be positive, got {voltage_swing}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    lsb = voltage_swing / (2 ** bits)
    sigma_max = lsb / (2.0 * sigma_multiplier)
    return BOLTZMANN * temperature / (sigma_max ** 2)
