"""Fault tolerance for the execution stack.

This package is the shared vocabulary and machinery every execution
layer uses to survive failure instead of losing work:

* :mod:`repro.resilience.policy` — :class:`FailureClass` typing of
  failures (transient / permanent / timeout / pool crash), and the
  :class:`RetryPolicy` (attempts, per-task deadlines, capped
  exponential backoff with deterministic jitter) that
  :meth:`repro.api.Simulator.run_many` enforces per task;
* :mod:`repro.resilience.journal` — the crash-safe append-only JSONL
  write-ahead journal (:class:`JsonlJournal`) under ``repro serve
  --journal`` restart recovery;
* :mod:`repro.resilience.faults` — the deterministic, seeded
  fault-injection harness (:class:`FaultInjector`, configured via the
  ``REPRO_FAULTS`` environment variable) the resilience tests, the
  chaos CI job, and ``bench_resilience`` all drive.
"""

from repro.resilience.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    get_injector,
    reset_injector,
)
from repro.resilience.journal import JsonlJournal
from repro.resilience.policy import (
    QUARANTINE_THRESHOLD,
    FailureClass,
    RetryPolicy,
    classify,
)

__all__ = [
    "FailureClass",
    "RetryPolicy",
    "classify",
    "QUARANTINE_THRESHOLD",
    "JsonlJournal",
    "FaultPlan",
    "FaultInjector",
    "FAULTS_ENV",
    "get_injector",
    "reset_injector",
]
