"""A crash-safe append-only JSONL write-ahead journal.

:class:`JsonlJournal` is the durable substrate under the serve daemon's
job recovery (:mod:`repro.serve.journal`): records are appended as one
JSON object per line with an explicit ``flush`` + ``fsync`` before the
append returns, so anything acknowledged is on disk even through a
``SIGKILL`` or power loss.  Replay is corruption-tolerant — a torn
final line from a crashed writer is skipped, never fatal — and
:meth:`rewrite` compacts the file through the same temp-file +
``os.replace`` idiom the disk cache uses, so readers always see either
the old journal or the new one, complete.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional


class JsonlJournal:
    """One append-only JSONL file with fsync'd appends and atomic rewrite.

    Thread-safe: appends from worker threads and compaction from the
    owner serialize on an internal lock.  The file handle is kept open
    across appends (one ``open`` per daemon lifetime, not per record).
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = None
        self.appends = 0
        self.rewrites = 0
        self.skipped_corrupt = 0

    # --- writing ------------------------------------------------------------

    def append(self, record: Dict[str, Any], sync: bool = True) -> None:
        """Durably append one record (fsync before returning).

        ``sync=False`` skips the fsync for records whose loss is
        acceptable (informational transitions); the write is still
        atomic at the line level for same-process readers.
        """
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            handle = self._open_locked()
            handle.write(line)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
            self.appends += 1

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> int:
        """Atomically replace the journal's contents (compaction).

        The replacement is written to a sibling temp file, fsync'd, and
        ``os.replace``d over the journal, so a crash mid-compaction
        leaves the previous journal intact.  Returns the record count.
        """
        encoded: List[str] = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records]
        temp = self.path.with_name(
            f"{self.path.name}.compact.{os.getpid()}")
        with self._lock:
            self._close_locked()
            with open(temp, "w", encoding="utf-8") as handle:
                for line in encoded:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.path)
            self.rewrites += 1
        return len(encoded)

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _open_locked(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _close_locked(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - nothing left to save
                pass
            self._handle = None

    # --- reading ------------------------------------------------------------

    def replay(self) -> Iterator[Dict[str, Any]]:
        """Yield every intact record, oldest first.

        A missing file replays as empty.  Undecodable lines — the torn
        tail a ``SIGKILL`` mid-append leaves behind, or bitrot — are
        counted in ``skipped_corrupt`` and skipped.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        self.skipped_corrupt += 1
                        continue
                    if isinstance(record, dict):
                        yield record
                    else:
                        self.skipped_corrupt += 1
        except FileNotFoundError:
            return

    # --- introspection ------------------------------------------------------

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def info(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "bytes": self.size_bytes(),
            "appends": self.appends,
            "rewrites": self.rewrites,
            "skipped_corrupt": self.skipped_corrupt,
        }
