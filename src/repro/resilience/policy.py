"""Failure classification and retry/timeout/backoff policy.

Every execution layer — :meth:`repro.api.Simulator.run_many` workers,
the healed process-pool runner, the serve daemon's job queue — shares
one vocabulary for "what kind of failure is this and what may we do
about it": a typed :class:`FailureClass` assigned by :func:`classify`,
and a :class:`RetryPolicy` that turns attempt numbers into capped,
jittered backoff delays.

Jitter is deterministic: it is derived from the policy seed, the task
key, and the attempt number, never from ambient randomness, so a run
under the fault-injection harness replays bit-identically.
"""

from __future__ import annotations

import enum
import hashlib
import os
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.exceptions import (CamJError, ConfigurationError,
                              ExecutionTimeoutError, LeaseExpiredError,
                              TransientSimError, WorkerCrashError)

#: How many pool deaths one task may be implicated in before it is
#: quarantined as a :class:`repro.exceptions.WorkerCrashError` result.
QUARANTINE_THRESHOLD = 2

#: Environment knobs the default policy honors (all optional).
RETRY_ATTEMPTS_ENV = "REPRO_RETRY_MAX_ATTEMPTS"
RETRY_BASE_DELAY_ENV = "REPRO_RETRY_BASE_DELAY_S"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT_S"


class FailureClass(enum.Enum):
    """What a failure means for the task that hit it."""

    #: Expected to clear on retry: injected faults, I/O hiccups,
    #: connection drops.  Retried under the policy's backoff.
    TRANSIENT = "transient"
    #: A property of the design/options (infeasible timing, bad
    #: mapping) or a programming error: retrying cannot help.
    PERMANENT = "permanent"
    #: The per-task deadline expired.  Terminal unless the policy
    #: opts into retrying timeouts.
    TIMEOUT = "timeout"
    #: A worker process died underneath the task.  Retried on a healed
    #: pool until :data:`QUARANTINE_THRESHOLD` strikes.
    POOL_CRASH = "pool_crash"
    #: A distributed task's lease expired before its worker reported
    #: back (SIGKILL, partition, hang).  Re-dispatched with a strike
    #: against the task identity, like a pool crash.
    LEASE_EXPIRED = "lease_expired"


def classify(failure: Optional[BaseException]) -> FailureClass:
    """The :class:`FailureClass` of one captured failure.

    Works on both raw exceptions (raised out of executors) and the
    typed errors carried by failed :class:`~repro.api.result.SimResult`
    values.  ``None`` (no failure) classifies as permanent — "do not
    retry" is the safe answer for a question that should not be asked.
    """
    if isinstance(failure, TransientSimError):
        return FailureClass.TRANSIENT
    if isinstance(failure, ExecutionTimeoutError):
        return FailureClass.TIMEOUT
    if isinstance(failure, LeaseExpiredError):
        return FailureClass.LEASE_EXPIRED
    if isinstance(failure, WorkerCrashError):
        return FailureClass.POOL_CRASH
    if isinstance(failure, BrokenExecutor):
        return FailureClass.POOL_CRASH
    if isinstance(failure, CamJError):
        return FailureClass.PERMANENT
    if isinstance(failure, (OSError, ConnectionError)):
        return FailureClass.TRANSIENT
    return FailureClass.PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """How hard one session tries before a failure becomes the answer.

    ``max_attempts``
        Total executions of one task (first try included).  ``1``
        disables retries entirely.
    ``base_delay_s`` / ``max_delay_s``
        Exponential backoff: attempt ``k`` (0-based) waits
        ``base * 2**k`` seconds, capped at ``max_delay_s``, plus
        deterministic jitter of up to ``jitter`` of the delay.
    ``timeout_s``
        Per-task deadline; ``None`` disables deadlines.  In process
        mode the deadline covers one attempt (the worker can be
        reclaimed); in thread mode it covers the whole task, since a
        running thread cannot be interrupted.
    ``retry_timeouts``
        Whether a deadline expiry is retried like a transient failure.
    ``seed``
        Namespace of the deterministic jitter.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    retry_timeouts: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"jitter must be within [0, 1], got {self.jitter}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive or None, got {self.timeout_s}")

    def replace(self, **changes: Any) -> "RetryPolicy":
        """A copy with some fields changed."""
        return replace(self, **changes)

    def retryable(self, failure_class: FailureClass) -> bool:
        """Whether the policy re-runs a task that failed this way."""
        if failure_class is FailureClass.TRANSIENT:
            return True
        if failure_class is FailureClass.TIMEOUT:
            return self.retry_timeouts
        # PERMANENT is terminal; POOL_CRASH and LEASE_EXPIRED follow
        # the strike/quarantine path instead of plain retries.
        return False

    def backoff_s(self, attempt: int, key: Any = None) -> float:
        """Delay before re-running ``key`` after failed attempt ``attempt``.

        Exponential in the attempt number, capped, with deterministic
        jitter derived from ``(seed, key, attempt)`` — two sessions with
        the same policy replay the same waits.
        """
        if self.base_delay_s == 0:
            return 0.0
        delay = min(self.base_delay_s * (2.0 ** max(attempt, 0)),
                    self.max_delay_s)
        if self.jitter == 0:
            return delay
        return delay * (1.0 + self.jitter * _unit_hash(
            f"{self.seed}:{key!r}:{attempt}"))

    @classmethod
    def from_env(cls, environ=None) -> "RetryPolicy":
        """The default policy, with environment overrides folded in."""
        environ = os.environ if environ is None else environ
        policy = cls()
        raw = environ.get(RETRY_ATTEMPTS_ENV, "").strip()
        if raw:
            try:
                policy = policy.replace(max_attempts=int(raw))
            except ValueError:
                raise ConfigurationError(
                    f"{RETRY_ATTEMPTS_ENV} must be an integer, "
                    f"got {raw!r}") from None
        raw = environ.get(RETRY_BASE_DELAY_ENV, "").strip()
        if raw:
            try:
                policy = policy.replace(base_delay_s=float(raw))
            except ValueError:
                raise ConfigurationError(
                    f"{RETRY_BASE_DELAY_ENV} must be a number, "
                    f"got {raw!r}") from None
        raw = environ.get(TASK_TIMEOUT_ENV, "").strip()
        if raw:
            try:
                policy = policy.replace(timeout_s=float(raw))
            except ValueError:
                raise ConfigurationError(
                    f"{TASK_TIMEOUT_ENV} must be a number, "
                    f"got {raw!r}") from None
        return policy


def _unit_hash(token: str) -> float:
    """A deterministic value in [0, 1) from one string token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64
