"""Deterministic fault injection for the execution stack.

One seeded :class:`FaultInjector`, configured through the
:data:`FAULTS_ENV` environment variable (or programmatically), drives
every chaos scenario the resilience tests, the ``chaos-smoke`` CI job,
and ``benchmarks/bench_resilience.py`` exercise:

``kill_rate`` / ``kill_design``
    Kill the executing worker process with ``os._exit`` — either a
    deterministic fraction of tasks (by task-identity digest) or any
    design whose name contains a marker substring.
``transient_rate``
    Raise :class:`repro.exceptions.TransientSimError` before the task
    body runs.
``delay_s`` / ``delay_rate``
    Sleep before the task body (slow-worker simulation).
``disk_error_rate``
    Raise ``OSError(ENOSPC)`` from the disk-cache I/O hooks.

Decisions are **deterministic and schedule-independent**: each one is a
pure function of ``(seed, task identity, attempt, fault kind)`` via a
SHA-256 digest, never of ambient RNG state or execution order, so a
faulty run replays bit-identically and a crashed task crashes again on
every attempt up to ``*_max_attempt`` (default 0: first attempt only —
retries then succeed, which is how recovery paths are measured).

The injector is inert unless configured: :func:`get_injector` returns a
no-op singleton when :data:`FAULTS_ENV` is unset, and the hooks in the
simulator and disk cache cost one attribute check in that case.
Worker processes inherit the environment, so one exported variable
reaches every layer, pool workers included.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exceptions import ConfigurationError, TransientSimError

#: Environment variable carrying the fault plan as a JSON object.
FAULTS_ENV = "REPRO_FAULTS"

#: Every key a fault plan may set (anything else is a typo → error).
_PLAN_KEYS = {
    "seed", "kill_rate", "kill_max_attempt", "kill_design",
    "kill_every", "transient_rate", "transient_max_attempt",
    "delay_s", "delay_rate", "disk_error_rate",
}


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated fault configuration."""

    seed: int = 0
    kill_rate: float = 0.0
    kill_max_attempt: int = 0
    kill_design: Optional[str] = None
    kill_every: int = 0
    transient_rate: float = 0.0
    transient_max_attempt: int = 0
    delay_s: float = 0.0
    delay_rate: float = 1.0
    disk_error_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "transient_rate", "delay_rate",
                     "disk_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"fault plan {name} must be within [0, 1], got {value}")
        if self.delay_s < 0:
            raise ConfigurationError(
                f"fault plan delay_s must be >= 0, got {self.delay_s}")
        if self.kill_every < 0:
            raise ConfigurationError(
                f"fault plan kill_every must be >= 0, "
                f"got {self.kill_every}")

    @property
    def active(self) -> bool:
        return bool(self.kill_rate or self.kill_design or self.kill_every
                    or self.transient_rate or self.delay_s
                    or self.disk_error_rate)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, "
                f"got {type(payload).__name__}")
        unknown = set(payload) - _PLAN_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys: {sorted(unknown)}; "
                f"supported: {sorted(_PLAN_KEYS)}")
        return cls(**payload)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan named by :data:`FAULTS_ENV` (empty plan when unset)."""
        environ = os.environ if environ is None else environ
        raw = environ.get(FAULTS_ENV, "").strip()
        if not raw:
            return cls()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{FAULTS_ENV} is not valid JSON: {error}") from error
        return cls.from_dict(payload)


@dataclass
class FaultCounters:
    """What one injector actually did (per process)."""

    kills: int = 0
    transients: int = 0
    delays: int = 0
    disk_errors: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"kills": self.kills, "transients": self.transients,
                "delays": self.delays, "disk_errors": self.disk_errors}


class FaultInjector:
    """Executes one :class:`FaultPlan` at the instrumented points.

    ``before_task`` runs at the top of every simulation attempt (thread
    and process workers alike); ``before_disk`` runs before every
    disk-cache read/write.  Both are no-ops for an inactive plan.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.active = self.plan.active
        self.counters = FaultCounters()
        self._task_count = 0

    # --- decision helpers --------------------------------------------------

    def _chance(self, kind: str, identity: str, attempt: int,
                rate: float) -> bool:
        """Deterministic rate decision for one (task, attempt, kind)."""
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.plan.seed}:{kind}:{identity}:{attempt}"
            .encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64 < rate

    # --- instrumented points -----------------------------------------------

    def before_task(self, name: str, identity: Optional[str],
                    attempt: int = 0) -> None:
        """Fault hook at the top of one simulation attempt.

        ``identity`` is the design content hash when available (stable
        across processes); the design name otherwise.  May sleep, raise
        :class:`TransientSimError`, or kill the process.
        """
        if not self.active:
            return
        token = identity if identity is not None else name
        plan = self.plan
        self._task_count += 1
        if plan.delay_s > 0 and self._chance(
                "delay", token, attempt, plan.delay_rate):
            self.counters.delays += 1
            time.sleep(plan.delay_s)
        kill = False
        if plan.kill_design and plan.kill_design in name:
            kill = True  # marked designs crash on every attempt
        elif plan.kill_every and self._task_count % plan.kill_every == 0:
            kill = True  # nth task executed by this process
        elif attempt <= plan.kill_max_attempt and self._chance(
                "kill", token, 0, plan.kill_rate):
            kill = True
        if kill:
            self.counters.kills += 1
            os._exit(1)
        if attempt <= plan.transient_max_attempt and self._chance(
                "transient", token, attempt, plan.transient_rate):
            self.counters.transients += 1
            raise TransientSimError(
                f"injected transient fault (task {name!r}, "
                f"attempt {attempt})")

    def before_disk(self, operation: str, token: str) -> None:
        """Fault hook before one disk-cache I/O operation."""
        if not self.active or self.plan.disk_error_rate <= 0.0:
            return
        if self._chance("disk", f"{operation}:{token}", 0,
                        self.plan.disk_error_rate):
            self.counters.disk_errors += 1
            raise OSError(errno.ENOSPC,
                          f"injected disk fault ({operation})")


#: Module-level singleton, resolved lazily from the environment.
_injector: Optional[FaultInjector] = None


def get_injector() -> FaultInjector:
    """The process-wide injector (a no-op one when nothing is configured).

    The environment is read once per process; call :func:`reset_injector`
    after changing :data:`FAULTS_ENV` (tests do).
    """
    global _injector
    if _injector is None:
        _injector = FaultInjector(FaultPlan.from_env())
    return _injector


def reset_injector(plan: Optional[FaultPlan] = None) -> FaultInjector:
    """Replace the singleton — with ``plan``, or re-read from the env."""
    global _injector
    _injector = FaultInjector(plan) if plan is not None else None
    return get_injector()
