"""Quickstart: the paper's Fig. 5 example through the session API.

A 32x32 pixel array bins every 2x2 tile in the charge domain, digitizes
the 16x16 result through column ADCs, runs a 3x3 digital edge detector fed
by a line buffer, and ships the edge map off-chip over MIPI CSI-2.

The three ``camj_*_config`` functions below mirror Fig. 5's three-part
programming interface.  They bundle into a first-class :class:`Design` —
a frozen, hashable value that serializes to JSON — which a
:class:`Simulator` session turns into structured results, one at a time
or as a parallel batch.

Run:  python examples/quickstart.py
"""

from repro import (
    ActivePixelSensor,
    AnalogArray,
    ColumnADC,
    ComputeUnit,
    Design,
    Layer,
    LineBuffer,
    PixelInput,
    ProcessStage,
    SENSOR_LAYER,
    SensorSystem,
    SimOptions,
    Simulator,
    units,
)


def camj_sw_config():
    """Algorithm description: the DAG of Fig. 5's right column."""
    input_data = PixelInput((32, 32, 1), name="Input")
    bin_stage = ProcessStage("Binning", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
    edge_stage = ProcessStage("EdgeDetection", input_size=(16, 16, 1),
                              kernel=(3, 3, 1), stride=(1, 1, 1),
                              padding="same")
    bin_stage.set_input_stage(input_data)
    edge_stage.set_input_stage(bin_stage)
    return [input_data, bin_stage, edge_stage]


def camj_hw_config():
    """Hardware description: the architecture drawn at the top of Fig. 5."""
    system = SensorSystem("Fig5-CIS", layers=[Layer(SENSOR_LAYER, 65)])

    pixel_array = AnalogArray("PixelArray", num_input=(1, 32),
                              num_output=(1, 16))
    pixel_array.add_component(
        ActivePixelSensor("BinningPixel", num_shared_pixels=4),  # 4x 4T-APS
        (16, 16))
    adc_array = AnalogArray("ADCArray", num_input=(1, 16),
                            num_output=(1, 16))
    adc_array.add_component(ColumnADC(bits=10), (1, 16))

    line_buffer = LineBuffer("LineBuffer", size=(3, 16),
                             write_energy_per_word=0.3 * units.pJ,
                             read_energy_per_word=0.3 * units.pJ,
                             pixels_per_write_word=1,
                             pixels_per_read_word=1)
    edge_unit = ComputeUnit("EdgeUnit",
                            input_pixels_per_cycle=(1, 3, 1),
                            output_pixels_per_cycle=(1, 1, 1),
                            energy_per_cycle=3.0 * units.pJ,
                            num_stages=2)

    pixel_array.set_output(adc_array)
    adc_array.set_output(line_buffer)
    edge_unit.set_input(line_buffer)
    edge_unit.set_sink()

    system.add_analog_array(pixel_array)
    system.add_analog_array(adc_array)
    system.add_memory(line_buffer)
    system.add_compute_unit(edge_unit)
    system.set_pixel_array_geometry(32, 32)
    return system


def camj_mapping():
    """Mapping description: which stage runs on which hardware unit."""
    return {
        "Input": "PixelArray",
        "Binning": "PixelArray",
        "EdgeDetection": "EdgeUnit",
    }


def main():
    # The three parts become one first-class, serializable scenario.
    design = Design(camj_sw_config(), camj_hw_config(), camj_mapping())
    print(f"design {design.name!r}  content hash {design.content_hash[:16]}…")

    # A simulator session runs designs under frozen options.
    simulator = Simulator(SimOptions(frame_rate=30))
    report = simulator.run(design).unwrap()

    print(report.to_table())
    print()
    print(f"digital latency T_D  = "
          f"{units.format_time(report.digital_latency)}")
    print(f"analog stage delay T_A = "
          f"{units.format_time(report.analog_stage_delay)}")
    print(f"(3 x T_A + T_D = "
          f"{units.format_time(3 * report.analog_stage_delay + report.digital_latency)}"
          f" = the 33.3 ms frame time of Fig. 6)")
    print()
    from repro.sim.chart import pipeline_chart
    print(pipeline_chart(*design, frame_rate=30))
    print()
    print("per-component breakdown:")
    for name, energy in sorted(report.by_component().items()):
        print(f"  {name:35s} {units.format_energy(energy)}")

    # Batches run in parallel with per-design results in input order;
    # structured failures mark infeasible points instead of raising.
    print()
    print("frame-rate batch through Simulator.run_many:")
    batch = simulator.run_many(
        [(design, SimOptions(frame_rate=fps))
         for fps in (15, 30, 60, 120, 1e6)])
    for result in batch:
        fps = result.options.frame_rate
        if result.ok:
            print(f"  {fps:>10g} FPS  "
                  f"{units.format_energy(result.report.total_energy)}/frame")
        else:
            print(f"  {fps:>10g} FPS  infeasible ({result.error_type})")

    # The design round-trips through JSON: store, diff, replay.
    clone = Design.from_json(design.to_json())
    replayed = simulator.run(clone)
    print()
    print(f"JSON round-trip: equal designs = {clone == design}, "
          f"replayed total = "
          f"{units.format_energy(replayed.report.total_energy)} "
          f"(cache hit: {replayed.cached})")


if __name__ == "__main__":
    main()
