"""Quickstart: the paper's Fig. 5 example, end to end.

A 32x32 pixel array bins every 2x2 tile in the charge domain, digitizes
the 16x16 result through column ADCs, runs a 3x3 digital edge detector fed
by a line buffer, and ships the edge map off-chip over MIPI CSI-2.

Run:  python examples/quickstart.py
"""

from repro import (
    ActivePixelSensor,
    AnalogArray,
    ColumnADC,
    ComputeUnit,
    Layer,
    LineBuffer,
    PixelInput,
    ProcessStage,
    SENSOR_LAYER,
    SensorSystem,
    simulate,
    units,
)


def camj_sw_config():
    """Algorithm description: the DAG of Fig. 5's right column."""
    input_data = PixelInput((32, 32, 1), name="Input")
    bin_stage = ProcessStage("Binning", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
    edge_stage = ProcessStage("EdgeDetection", input_size=(16, 16, 1),
                              kernel=(3, 3, 1), stride=(1, 1, 1),
                              padding="same")
    bin_stage.set_input_stage(input_data)
    edge_stage.set_input_stage(bin_stage)
    return [input_data, bin_stage, edge_stage]


def camj_hw_config():
    """Hardware description: the architecture drawn at the top of Fig. 5."""
    system = SensorSystem("Fig5-CIS", layers=[Layer(SENSOR_LAYER, 65)])

    pixel_array = AnalogArray("PixelArray", num_input=(1, 32),
                              num_output=(1, 16))
    pixel_array.add_component(
        ActivePixelSensor("BinningPixel", num_shared_pixels=4),  # 4x 4T-APS
        (16, 16))
    adc_array = AnalogArray("ADCArray", num_input=(1, 16),
                            num_output=(1, 16))
    adc_array.add_component(ColumnADC(bits=10), (1, 16))

    line_buffer = LineBuffer("LineBuffer", size=(3, 16),
                             write_energy_per_word=0.3 * units.pJ,
                             read_energy_per_word=0.3 * units.pJ,
                             pixels_per_write_word=1,
                             pixels_per_read_word=1)
    edge_unit = ComputeUnit("EdgeUnit",
                            input_pixels_per_cycle=(1, 3, 1),
                            output_pixels_per_cycle=(1, 1, 1),
                            energy_per_cycle=3.0 * units.pJ,
                            num_stages=2)

    pixel_array.set_output(adc_array)
    adc_array.set_output(line_buffer)
    edge_unit.set_input(line_buffer)
    edge_unit.set_sink()

    system.add_analog_array(pixel_array)
    system.add_analog_array(adc_array)
    system.add_memory(line_buffer)
    system.add_compute_unit(edge_unit)
    system.set_pixel_array_geometry(32, 32)
    return system


def camj_mapping():
    """Mapping description: which stage runs on which hardware unit."""
    return {
        "Input": "PixelArray",
        "Binning": "PixelArray",
        "EdgeDetection": "EdgeUnit",
    }


def main():
    stages = camj_sw_config()
    system = camj_hw_config()
    report = simulate(stages, system, camj_mapping(), frame_rate=30)

    print(report.to_table())
    print()
    print(f"digital latency T_D  = "
          f"{units.format_time(report.digital_latency)}")
    print(f"analog stage delay T_A = "
          f"{units.format_time(report.analog_stage_delay)}")
    print(f"(3 x T_A + T_D = "
          f"{units.format_time(3 * report.analog_stage_delay + report.digital_latency)}"
          f" = the 33.3 ms frame time of Fig. 6)")
    print()
    from repro.sim.chart import pipeline_chart
    print(pipeline_chart(stages, system, camj_mapping(), frame_rate=30))
    print()
    print("per-component breakdown:")
    for name, energy in sorted(report.by_component().items()):
        print(f"  {name:35s} {units.format_energy(energy)}")


if __name__ == "__main__":
    main()
