"""Ed-Gaze architectural exploration (Sec. 6.1-6.3 of the paper).

Sweeps the gaze-tracking workload across 2D-In / 2D-Off / 3D-In /
3D-In-STT / 2D-In-Mixed at both CIS nodes and prints the Fig. 9b / Fig. 11
comparisons plus the Table 3 power densities.

Run:  python examples/explore_edgaze.py
"""

from repro import units
from repro.area import power_density
from repro.area.model import format_density
from repro.energy.report import Category
from repro.usecases import (
    UseCaseConfig,
    build_edgaze,
    edgaze_configs,
    run_edgaze,
    run_edgaze_mixed,
)

_CATEGORIES = (Category.SEN, Category.MEM_D, Category.COMP_D,
               Category.MEM_A, Category.COMP_A, Category.MIPI,
               Category.UTSV)


def _print_report(label, report):
    cells = []
    for category in _CATEGORIES:
        energy = report.category_energy(category)
        if energy:
            cells.append(f"{category.value} {energy / units.uJ:7.2f}")
    print(f"  {label:20s} total {report.total_energy / units.uJ:7.1f} uJ   "
          + "  ".join(cells))


def main():
    print("=== Fig. 9b: computing in vs off sensor, 2D vs 3D ===")
    reports = {}
    for config in edgaze_configs():
        report = run_edgaze(config)
        reports[config.label] = report
        _print_report(config.label, report)

    print("\nFinding 1 checks:")
    for node in (130, 65):
        inside = reports[f"2D-In ({node}nm)"].total_energy
        off = reports[f"2D-Off ({node}nm)"].total_energy
        print(f"  {node} nm: 2D-In / 2D-Off = {inside / off:.2f}x "
              f"(compute-dominant workloads lose in-sensor)")
    print(f"  65 nm 2D-In / 130 nm 2D-In = "
          f"{reports['2D-In (65nm)'].total_energy / reports['2D-In (130nm)'].total_energy:.2f}x"
          f" (the 65 nm leakage anomaly)")

    print("\nFinding 2 checks:")
    for node in (130, 65):
        base = reports[f"2D-In ({node}nm)"].total_energy
        stacked = reports[f"3D-In ({node}nm)"].total_energy
        stt = reports[f"3D-In-STT ({node}nm)"].total_energy
        print(f"  {node} nm: 3D-In saves {100 * (1 - stacked / base):.1f}% "
              f"over 2D-In; STT-RAM saves another "
              f"{100 * (1 - stt / stacked):.1f}%")

    print("\n=== Fig. 11: mixed-signal vs fully-digital in-sensor ===")
    for node in (130, 65):
        mixed = run_edgaze_mixed(node)
        _print_report(f"2D-In-Mixed ({node}nm)", mixed)
        base = reports[f"2D-In ({node}nm)"].total_energy
        print(f"    -> saves {100 * (1 - mixed.total_energy / base):.1f}% "
              f"over fully-digital 2D-In (paper: 38.8% / 77.1%)")

    print("\n=== Table 3: power density ===")
    for node in (130, 65):
        row = []
        for placement in ("2D-Off", "2D-In", "3D-In"):
            config = UseCaseConfig(placement, node)
            _, system, _ = build_edgaze(config)
            density = power_density(system, run_edgaze(config))
            row.append(f"{placement} {format_density(density)}")
        print(f"  {node}/22 nm:  " + "   ".join(row))


if __name__ == "__main__":
    main()
