"""Ed-Gaze architectural exploration (Sec. 6.1-6.3 of the paper).

Runs the whole gaze-tracking design space — 2D-In / 2D-Off / 3D-In /
3D-In-STT at both CIS nodes — through the exploration engine in one
cached, parallel batch: three objectives (energy per frame, power
density, digital latency), the N-objective Pareto frontier with
per-point bottleneck annotations, then the paper's Finding 1/2 checks,
the Fig. 11 mixed-signal comparison, and the Table 3 power densities
read straight off the ``power_density`` metric.

Run:  python examples/explore_edgaze.py
"""

from repro import units
from repro.analysis import compare_reports
from repro.area.model import format_density
from repro.explore import choice, explore
from repro.usecases import edgaze_space


def main():
    print("=== Fig. 9b grid through the exploration engine ===")
    result = explore(edgaze_space(), "edgaze",
                     objectives=("energy_per_frame", "power_density",
                                 "latency"))
    print(result.to_table())

    by_config = {(point.params["placement"], point.params["cis_node"]):
                 point for point in result.points}

    def energy(placement, node):
        return by_config[(placement, node)].metrics["energy_per_frame"]

    print("\nFinding 1 checks:")
    for node in (130, 65):
        ratio = energy("2D-In", node) / energy("2D-Off", node)
        print(f"  {node} nm: 2D-In / 2D-Off = {ratio:.2f}x "
              f"(compute-dominant workloads lose in-sensor)")
    print(f"  65 nm 2D-In / 130 nm 2D-In = "
          f"{energy('2D-In', 65) / energy('2D-In', 130):.2f}x"
          f" (the 65 nm leakage anomaly)")

    print("\nFinding 2 checks:")
    for node in (130, 65):
        base, stacked = energy("2D-In", node), energy("3D-In", node)
        stt = energy("3D-In-STT", node)
        print(f"  {node} nm: 3D-In saves {100 * (1 - stacked / base):.1f}% "
              f"over 2D-In; STT-RAM saves another "
              f"{100 * (1 - stt / stacked):.1f}%")

    print("\n=== Fig. 11: mixed-signal vs fully-digital in-sensor ===")
    # A second one-axis exploration over the mixed-signal builder; the
    # in-memory reports let compare_reports attribute the savings.
    mixed = explore(choice("cis_node", [130, 65]), "edgaze_mixed",
                    objectives=("energy_per_frame",), annotate=False)
    for point in mixed.points:
        node = point.params["cis_node"]
        baseline = by_config[("2D-In", node)].report
        delta = compare_reports(baseline, point.report)
        print(f"  2D-In-Mixed ({node}nm)  total "
              f"{point.metrics['energy_per_frame'] / units.uJ:7.1f} uJ  "
              f"-> saves {100 * delta.savings_fraction:.1f}% over "
              f"fully-digital 2D-In (paper: 38.8% / 77.1%)")

    print("\n=== Table 3: power density (the power_density metric) ===")
    for node in (130, 65):
        row = [f"{placement} "
               f"{format_density(by_config[(placement, node)].metrics['power_density'])}"
               for placement in ("2D-Off", "2D-In", "3D-In")]
        print(f"  {node}/22 nm:  " + "   ".join(row))


if __name__ == "__main__":
    main()
