"""Costing an irregular algorithm through the memory-trace hook.

Stencil descriptions cover the regular algorithms; for irregular ones
(here: a sparse event-driven tracker touching memory data-dependently)
the paper's escape hatch is an offline-collected memory trace billed
against a memory model — the DRAMPower-style integration of Sec. 3.3.

Run:  python examples/irregular_trace.py
"""

from repro import units
from repro.memlib import DRAMModel, SRAMModel, STTRAMModel
from repro.sw.trace import MemoryTrace

#: A miniature trace of a sparse tracker: bursty reads around detected
#: events, occasional state write-backs.  Real traces come from an
#: instrumented run of the algorithm.
_TRACE_TEXT = """
# op bytes timestamp(s)
R 4096 0.000   # event window fetch
R 4096 0.002
W  512 0.003   # track state update
R 8192 0.010   # second event burst
R 4096 0.011
W  512 0.012
R 2048 0.025
W 1024 0.030   # final state write-back
"""


def main():
    trace = MemoryTrace.parse(_TRACE_TEXT)
    print(f"trace: {trace}")
    print(f"  {trace.num_reads} reads / {trace.num_writes} writes over "
          f"{trace.duration * 1e3:.0f} ms\n")

    frame_time = 1 / 30
    candidates = {
        "64KB SRAM @65nm": SRAMModel(capacity_bytes=64 * units.KB,
                                     node_nm=65),
        "64KB SRAM @22nm": SRAMModel(capacity_bytes=64 * units.KB,
                                     node_nm=22),
        "64KB STT-RAM @22nm": STTRAMModel(capacity_bytes=64 * units.KB,
                                          node_nm=22),
        "stacked DRAM": DRAMModel(capacity_bytes=8 * units.MB),
    }
    print(f"{'memory':<22} {'dynamic':>12} {'leak/refresh':>14} "
          f"{'total':>12}")
    for name, memory in candidates.items():
        dynamic, leakage = trace.energy_against(memory,
                                                frame_time=frame_time)
        print(f"{name:<22} {units.format_energy(dynamic):>12} "
              f"{units.format_energy(leakage):>14} "
              f"{units.format_energy(dynamic + leakage):>12}")

    print("\nThe sparse tracker touches little data, so standing power "
          "(leakage/refresh)\ndecides the ranking — the same mechanism as "
          "the paper's Finding 1.")


if __name__ == "__main__":
    main()
