"""Closing the loop the paper leaves open: energy -> heat -> image quality.

Sec. 6.2 ends with "higher power density increases the thermal-induced
noise and worsens the imaging and computing quality... an exploration that
CamJ enables and that we leave to future work."  This example runs it:
each Ed-Gaze architecture's power density heats the die, dark current
doubles every ~7 K, and low-light SNR drops accordingly.

Run:  python examples/thermal_exploration.py
"""

from repro.noise import (
    FunctionalPixel,
    imaging_snr_at_operating_point,
    thermal_operating_point,
)
from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed
from repro.usecases.edgaze import build_edgaze
from repro.usecases.edgaze_mixed import build_edgaze_mixed


def main():
    pixel = FunctionalPixel(dark_current_e_per_s=2000.0,
                            read_noise_electrons=2.0)

    print("Ed-Gaze architectures at 65 nm: power density -> die "
          "temperature -> low-light SNR\n")
    print(f"{'architecture':<16} {'operating point':<42} "
          f"{'SNR @100e-':>11}")
    rows = []
    for placement in ("2D-Off", "3D-In", "2D-In"):
        config = UseCaseConfig(placement, 65)
        _, system, _ = build_edgaze(config)
        report = run_edgaze(config)
        rows.append((placement, system, report))
    _, mixed_system, _ = build_edgaze_mixed(65)
    rows.append(("2D-In-Mixed", mixed_system, run_edgaze_mixed(65)))

    for label, system, report in rows:
        point = thermal_operating_point(system, report)
        snr = imaging_snr_at_operating_point(system, report, pixel,
                                             seed=7)
        print(f"{label:<16} {point.describe():<42} {snr:>9.1f} dB")

    print("\nThe dense 2D-In design pays twice: more energy AND a hotter,"
          "\nnoisier image — the co-optimization argument of Sec. 6.2.")


if __name__ == "__main__":
    main()
