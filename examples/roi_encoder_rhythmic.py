"""Rhythmic Pixel Regions exploration (Fig. 9a of the paper).

A communication-dominant workload: the ROI encoder halves the data leaving
the chip, so moving it inside the sensor pays off — and pays off more the
closer the CIS node is to the SoC node.

Run:  python examples/roi_encoder_rhythmic.py
"""

from repro import units
from repro.energy.report import Category
from repro.usecases import rhythmic_configs, run_rhythmic


def main():
    print("=== Fig. 9a: Rhythmic Pixel Regions ===")
    reports = {}
    for config in rhythmic_configs():
        report = run_rhythmic(config)
        reports[config.label] = report
        rollup = report.by_category()
        cells = "  ".join(
            f"{category.value} {energy / units.uJ:6.2f}"
            for category, energy in sorted(rollup.items(),
                                           key=lambda kv: kv[0].value))
        print(f"  {config.label:16s} total "
              f"{report.total_energy / units.uJ:6.1f} uJ   {cells}")

    print("\nFinding 1 (communication-dominant side):")
    for node in (130, 65):
        off = reports[f"2D-Off ({node}nm)"].total_energy
        inside = reports[f"2D-In ({node}nm)"].total_energy
        print(f"  {node} nm CIS: 2D-In saves "
              f"{100 * (1 - inside / off):.1f}% over 2D-Off "
              f"(paper: {'14.5' if node == 130 else '33.4'}%)")

    savings = []
    for node in (130, 65):
        base = reports[f"2D-In ({node}nm)"].total_energy
        stacked = reports[f"3D-In ({node}nm)"].total_energy
        savings.append(1 - stacked / base)
    print(f"  3D-In saves {100 * sum(savings) / 2:.1f}% over 2D-In on "
          f"average (paper: 15.8%)")

    mipi_off = reports["2D-Off (65nm)"].category_energy(Category.MIPI)
    mipi_in = reports["2D-In (65nm)"].category_energy(Category.MIPI)
    print(f"  MIPI volume: {mipi_off / units.uJ:.1f} uJ full-image vs "
          f"{mipi_in / units.uJ:.1f} uJ ROI (the 50% ROI reduction)")


if __name__ == "__main__":
    main()
