"""Drive the ``repro serve`` daemon end to end with :class:`ServeClient`.

Boots a real daemon as a subprocess on an ephemeral port (the
``--ready-file`` rendezvous is how scripts and CI find the bound
address), then walks the whole client workflow against it:

1. health-check the daemon and submit ``explore_edgaze.json`` — the
   Sec. 6 Ed-Gaze design space — as an exploration job;
2. tail the job's JSONL stream, printing each design point the moment
   its simulation lands;
3. fetch the finished ``repro.explore/1`` document and show the best
   design per objective;
4. resubmit the identical spec to demonstrate the shared-session
   payoff: every point now comes from the daemon's warm cache;
5. shut the daemon down with SIGTERM and confirm it exits cleanly.

Run:  python examples/serve_client.py
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from repro.explore import ExplorationResult
from repro.serve import ServeClient

HERE = pathlib.Path(__file__).resolve().parent
SPEC_PATH = HERE / "explore_edgaze.json"


def boot_daemon(ready_file: pathlib.Path) -> subprocess.Popen:
    """Start ``repro serve`` on an ephemeral port; wait for the address."""
    env = dict(os.environ)
    src = str(HERE.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--workers", "2", "--chunk-size", "2",
         "--ready-file", str(ready_file)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 60.0
    while not ready_file.exists():
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {process.returncode}")
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("daemon never wrote its ready file")
        time.sleep(0.05)
    return process


def main() -> None:
    spec = json.loads(SPEC_PATH.read_text())
    with tempfile.TemporaryDirectory() as scratch:
        ready_file = pathlib.Path(scratch) / "serve-ready.json"
        process = boot_daemon(ready_file)
        try:
            address = json.loads(ready_file.read_text())
            client = ServeClient.from_url(address["url"], timeout=60.0)
            print(f"daemon up at {address['url']} "
                  f"(uptime {client.healthz()['uptime_s']:.2f}s)")

            job = client.submit(spec)
            print(f"submitted {job['kind']} job {job['id']} "
                  f"({job['name']}): {job['state']}")

            print("streaming points as they land:")
            for event in client.stream(job["id"]):
                if event["event"] == "point":
                    point = event["point"]
                    energy = point["metrics"]["energy_per_frame"]
                    print(f"  {point['params']['placement']:>10} @ "
                          f"{point['params']['cis_node']:>3}nm   "
                          f"{energy * 1e3:8.3f} mJ/frame")
                elif event["event"] == "done":
                    final = event["job"]
                    progress = final["progress"]
                    print(f"job {final['state']}: "
                          f"{progress['completed']}/{progress['total']} "
                          f"points, {progress['cache_hits']} cache hits")

            document = client.result(job["id"])["result"]
            result = ExplorationResult.from_dict(document)
            print(f"Pareto frontier of {result.name} "
                  f"({', '.join(m.name for m in result.objectives)}):")
            for point in result.frontier():
                metrics = ", ".join(
                    f"{metric.name}={point.metrics[metric.name]:.4g}"
                    for metric in result.objectives)
                print(f"  {point.params}: {metrics}")

            # The identical spec again: the shared session serves every
            # point from cache, which is the daemon's whole point.
            repeat = client.submit(spec)
            done = client.wait(repeat["id"], timeout=120.0)
            progress = done["progress"]
            print(f"warm resubmit {repeat['id']}: "
                  f"{progress['cache_hits']}/{progress['total']} "
                  f"points from the shared cache")

            stats = client.stats()
            print(f"daemon stats: {stats['jobs']['done']} jobs done, "
                  f"{stats['cache']['hits']} session cache hits")
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                process.wait(timeout=60.0)
        print(f"daemon exited with code {process.returncode}")


if __name__ == "__main__":
    main()
