"""Iterative design refinement: the Fig. 4 feedback loop in action.

Builds a custom always-on classifier sensor, then demonstrates the
feedback CamJ gives a designer, now phrased as design-space exploration:

1. an ``options.frame_rate`` axis showing where the digital pipeline
   stops fitting the frame budget (typed TimingError points, not
   exceptions);
2. a stall diagnosis when a line buffer is sized below the kernel window;
3. a two-axis product space (process node x PE clock) with a filtered
   subspace, explored against energy and latency with Pareto frontier
   extraction and bottleneck annotation;
4. the legacy 1-D ``sweep_parameter`` shim sweeping a *non-numeric*
   parameter (the line-buffer technology flavor).

Run:  python examples/design_space_sweep.py
"""

from repro import (
    ActivePixelSensor,
    AnalogArray,
    ColumnADC,
    Conv2DStage,
    ComputeUnit,
    Design,
    Layer,
    LineBuffer,
    PixelInput,
    SENSOR_LAYER,
    SensorSystem,
    Simulator,
    units,
)
from repro.analysis import sweep_parameter
from repro.explore import choice, explore, linspace, product
from repro.tech import mac_energy


def build(node_nm=65, line_rows=3, clock_hz=50 * units.MHz,
          buffer_energy_pj=0.4):
    source = PixelInput((128, 128, 1), name="Input")
    conv = Conv2DStage("Classifier", input_size=(128, 128, 1),
                       num_kernels=8, kernel_size=(3, 3),
                       stride=(2, 2, 1))
    conv.set_input_stage(source)

    system = SensorSystem("AlwaysOnClassifier",
                          layers=[Layer(SENSOR_LAYER, node_nm)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (128, 128))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(bits=8), (1, 128))
    pixels.set_output(adcs)
    line_buffer = LineBuffer("Lines", size=(line_rows, 128),
                             write_energy_per_word=buffer_energy_pj
                             * units.pJ,
                             read_energy_per_word=buffer_energy_pj
                             * units.pJ)
    adcs.set_output(line_buffer)
    pe = ComputeUnit("ConvPE",
                     input_pixels_per_cycle=(3, 1),
                     output_pixels_per_cycle=(1, 1),
                     energy_per_cycle=9 * mac_energy(node_nm),
                     num_stages=3,
                     clock_hz=clock_hz)
    pe.set_input(line_buffer)
    pe.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(line_buffer)
    system.add_compute_unit(pe)
    system.set_pixel_array_geometry(128, 128)
    mapping = {"Input": "Pixels", "Classifier": "ConvPE"}
    return Design([source, conv], system, mapping)


#: Technology flavors for the non-numeric sweep: per-word access energy.
BUFFER_FLAVORS = {"hp-sram": 0.6, "lp-sram": 0.4, "near-vt": 0.25}


def main():
    print("=== 1. frame-rate axis: where does the design stop fitting? ===")
    fps = explore(choice("options.frame_rate",
                         [30, 120, 480, 2000, 10000, 50000]),
                  lambda **_: build(),
                  objectives=("energy_per_frame", "power"),
                  annotate=False)
    for point in fps.points:
        rate = point.params["options.frame_rate"]
        if point.feasible:
            print(f"  {rate:6g} FPS: "
                  f"{units.format_energy(point.metrics['energy_per_frame'])}"
                  f"/frame, {units.format_power(point.metrics['power'])}")
        else:
            print(f"  {rate:6g} FPS: REJECTED — {point.failure}")

    print("\n=== 2. stall feedback: a 2-row buffer under a 3x3 kernel ===")
    result = Simulator().run(build(line_rows=2))
    print(f"  {result.error_type}: {result.failure}")

    print("\n=== 3. node x clock product space, filtered, 2 objectives ===")
    space = product(choice("node_nm", [130, 90, 65, 28]),
                    linspace("clock_mhz", 25.0, 100.0, 4))
    # A filtered subspace: old nodes cannot close timing at high clocks.
    space = space.filter(
        lambda p: not (p["node_nm"] >= 90 and p["clock_mhz"] > 75))
    grid = explore(space,
                   lambda node_nm, clock_mhz: build(
                       node_nm=node_nm,
                       clock_hz=clock_mhz * units.MHz),
                   objectives=("energy_per_frame", "latency"))
    print(f"  {len(grid.points)} points after filtering, "
          f"{len(grid.frontier())} on the frontier:")
    for point in grid.frontier():
        print(f"    {point.label():<34} "
              f"{units.format_energy(point.metrics['energy_per_frame'])}"
              f"/frame  latency "
              f"{units.format_time(point.metrics['latency'])}"
              + (f"  [{point.bottleneck.name}]" if point.bottleneck
                 else ""))

    print("\n=== 4. non-numeric sweep: line-buffer technology flavor ===")
    points = sweep_parameter(
        lambda flavor: build(buffer_energy_pj=BUFFER_FLAVORS[flavor]),
        list(BUFFER_FLAVORS))
    for point in points:
        print(f"  {point.parameter:>8}: "
              f"{units.format_energy(point.report.total_energy)}/frame")


if __name__ == "__main__":
    main()
