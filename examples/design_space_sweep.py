"""Iterative design refinement: the Fig. 4 feedback loop in action.

Builds a custom always-on classifier sensor, then demonstrates the three
kinds of feedback CamJ gives a designer:

1. a frame-rate sweep showing where the digital pipeline stops fitting the
   frame budget (a typed TimingError -> "re-design the accelerator");
2. a stall diagnosis when a line buffer is sized below the kernel window;
3. a generic parameter sweep quantifying what a newer digital node buys.

The sweeps run through the session API (Simulator.run_many), so the
points are simulated in parallel and infeasibility comes back as data —
no hand-rolled try/except.

Run:  python examples/design_space_sweep.py
"""

from repro import (
    ActivePixelSensor,
    AnalogArray,
    ColumnADC,
    Conv2DStage,
    ComputeUnit,
    Design,
    Layer,
    LineBuffer,
    PixelInput,
    SENSOR_LAYER,
    SensorSystem,
    Simulator,
    units,
)
from repro.analysis import sweep_frame_rate, sweep_parameter
from repro.tech import mac_energy


def build(node_nm=65, line_rows=3, clock_hz=50 * units.MHz):
    source = PixelInput((128, 128, 1), name="Input")
    conv = Conv2DStage("Classifier", input_size=(128, 128, 1),
                       num_kernels=8, kernel_size=(3, 3),
                       stride=(2, 2, 1))
    conv.set_input_stage(source)

    system = SensorSystem("AlwaysOnClassifier",
                          layers=[Layer(SENSOR_LAYER, node_nm)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (128, 128))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(bits=8), (1, 128))
    pixels.set_output(adcs)
    line_buffer = LineBuffer("Lines", size=(line_rows, 128),
                             write_energy_per_word=0.4 * units.pJ,
                             read_energy_per_word=0.4 * units.pJ)
    adcs.set_output(line_buffer)
    pe = ComputeUnit("ConvPE",
                     input_pixels_per_cycle=(3, 1),
                     output_pixels_per_cycle=(1, 1),
                     energy_per_cycle=9 * mac_energy(node_nm),
                     num_stages=3,
                     clock_hz=clock_hz)
    pe.set_input(line_buffer)
    pe.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(line_buffer)
    system.add_compute_unit(pe)
    system.set_pixel_array_geometry(128, 128)
    mapping = {"Input": "Pixels", "Classifier": "ConvPE"}
    return [source, conv], system, mapping


def main():
    print("=== 1. frame-rate sweep: where does the design stop fitting? ===")
    for point in sweep_frame_rate(build, [30, 120, 480, 2000, 10000, 50000]):
        if point.feasible:
            report = point.report
            print(f"  {point.parameter:6g} FPS: "
                  f"{units.format_energy(report.total_energy)}"
                  f"/frame, {units.format_power(report.total_power)}")
        else:
            print(f"  {point.parameter:6g} FPS: REJECTED — {point.failure}")

    print("\n=== 2. stall feedback: a 2-row buffer under a 3x3 kernel ===")
    result = Simulator().run(Design(*build(line_rows=2)))
    print(f"  {result.error_type}: {result.failure}")

    print("\n=== 3. node sweep at 30 FPS (generic sweep_parameter) ===")
    points = sweep_parameter(lambda node: build(node_nm=int(node)),
                             [130, 110, 90, 65, 45, 28])
    for point in points:
        report = point.report
        print(f"  {point.parameter:4g} nm: "
              f"{units.format_energy(report.total_energy)}"
              f"/frame  (digital "
              f"{units.format_energy(report.digital_energy)})")


if __name__ == "__main__":
    main()
