"""Iterative design refinement: the Fig. 4 feedback loop in action.

Builds a custom always-on classifier sensor, then demonstrates the three
kinds of feedback CamJ gives a designer:

1. a frame-rate sweep showing where the digital pipeline stops fitting the
   frame budget (TimingError -> "re-design the accelerator");
2. a stall diagnosis when a line buffer is sized below the kernel window;
3. a node sweep quantifying what a newer digital node buys.

Run:  python examples/design_space_sweep.py
"""

from repro import (
    ActivePixelSensor,
    AnalogArray,
    ColumnADC,
    Conv2DStage,
    ComputeUnit,
    Layer,
    LineBuffer,
    PixelInput,
    SENSOR_LAYER,
    SensorSystem,
    StallError,
    TimingError,
    simulate,
    units,
)
from repro.tech import mac_energy


def build(node_nm=65, line_rows=3, clock_hz=50 * units.MHz):
    source = PixelInput((128, 128, 1), name="Input")
    conv = Conv2DStage("Classifier", input_size=(128, 128, 1),
                       num_kernels=8, kernel_size=(3, 3),
                       stride=(2, 2, 1))
    conv.set_input_stage(source)

    system = SensorSystem("AlwaysOnClassifier",
                          layers=[Layer(SENSOR_LAYER, node_nm)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (128, 128))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(bits=8), (1, 128))
    pixels.set_output(adcs)
    line_buffer = LineBuffer("Lines", size=(line_rows, 128),
                             write_energy_per_word=0.4 * units.pJ,
                             read_energy_per_word=0.4 * units.pJ)
    adcs.set_output(line_buffer)
    pe = ComputeUnit("ConvPE",
                     input_pixels_per_cycle=(3, 1),
                     output_pixels_per_cycle=(1, 1),
                     energy_per_cycle=9 * mac_energy(node_nm),
                     num_stages=3,
                     clock_hz=clock_hz)
    pe.set_input(line_buffer)
    pe.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(line_buffer)
    system.add_compute_unit(pe)
    system.set_pixel_array_geometry(128, 128)
    mapping = {"Input": "Pixels", "Classifier": "ConvPE"}
    return [source, conv], system, mapping


def main():
    print("=== 1. frame-rate sweep: where does the design stop fitting? ===")
    for fps in (30, 120, 480, 2000, 10000, 50000):
        stages, system, mapping = build()
        try:
            report = simulate(stages, system, mapping, frame_rate=fps)
            print(f"  {fps:6d} FPS: {units.format_energy(report.total_energy)}"
                  f"/frame, {units.format_power(report.total_power)}")
        except TimingError as error:
            print(f"  {fps:6d} FPS: REJECTED — {error}")
            break

    print("\n=== 2. stall feedback: a 2-row buffer under a 3x3 kernel ===")
    stages, system, mapping = build(line_rows=2)
    try:
        simulate(stages, system, mapping, frame_rate=30)
    except StallError as error:
        print(f"  StallError: {error}")

    print("\n=== 3. node sweep at 30 FPS ===")
    for node in (130, 110, 90, 65, 45, 28):
        stages, system, mapping = build(node_nm=node)
        report = simulate(stages, system, mapping, frame_rate=30)
        print(f"  {node:4d} nm: {units.format_energy(report.total_energy)}"
              f"/frame  (digital "
              f"{units.format_energy(report.digital_energy)})")


if __name__ == "__main__":
    main()
