"""Validation run: rebuild the nine Table 2 chips and reproduce Fig. 7.

Prints the estimated vs reported energy per pixel of every chip, the
per-category breakdown (the Fig. 7b-j bars), and the headline metrics
(MAPE, Pearson correlation).

Run:  python examples/validate_chips.py
"""

from repro import units
from repro.validation import run_validation


def main():
    summary = run_validation()
    print(summary.to_table())
    print(f"\nreported energies span "
          f"{summary.energy_span_orders:.1f} orders of magnitude\n")

    for result in summary.results:
        chip = result.chip
        print(f"{chip.name} — {chip.description}")
        print(f"  {chip.reference}")
        print(f"  {chip.process_node}, {chip.num_pixels} px @ "
              f"{chip.frame_rate:g} FPS")
        for category, energy in sorted(result.breakdown_per_pixel().items()):
            print(f"    {category:8s} {energy / units.pJ:10.2f} pJ/px")
        print()


if __name__ == "__main__":
    main()
