"""Building the Fig. 10 mixed-signal CIS, piece by piece.

Walks through the construction of the analog front-end that replaces
Ed-Gaze's first two digital stages: shared-FD binning pixels, an active
analog frame buffer held for the whole frame, switched-capacitor
subtractors, and delta comparators — then compares against the
fully-digital 2D-In design (Fig. 11) and shows the Fig. 13
memory-down/compute-up effect.

Run:  python examples/mixed_signal_design.py
"""

from repro import units
from repro.analysis import compare_reports, identify_bottlenecks
from repro.energy.report import Category
from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed
from repro.usecases.edgaze_mixed import build_edgaze_mixed


def main():
    print("=== The Fig. 10 hardware ===")
    stages, system, mapping = build_edgaze_mixed(65)
    print(system.describe())
    print("\nmapping:")
    for stage, unit in mapping.items():
        print(f"  {stage:16s} -> {unit}")

    print("\n=== Fig. 11: against the fully-digital 2D-In design ===")
    for node in (130, 65):
        digital = run_edgaze(UseCaseConfig("2D-In", node))
        mixed = run_edgaze_mixed(node)
        print(compare_reports(digital, mixed).describe())
        print()

    print("=== Fig. 13: where the saving comes from (65 nm) ===")
    digital = run_edgaze(UseCaseConfig("2D-In", 65))
    mixed = run_edgaze_mixed(65)
    first = ("Input", "Downsample", "FrameSubtract")
    for label, report in (("digital", digital), ("mixed", mixed)):
        compute = sum(e.energy for e in report.entries
                      if e.stage in first
                      and e.category in (Category.COMP_D, Category.COMP_A))
        memory = sum(e.energy for e in report.entries
                     if e.stage in first
                     and e.category in (Category.MEM_D, Category.MEM_A))
        print(f"  {label:8s} first-stage compute "
              f"{compute / units.uJ:7.3f} uJ   memory "
              f"{memory / units.uJ:8.3f} uJ")
    print("  -> memory collapses, compute slightly rises (8-bit OpAmps)")

    print("\n=== Remaining bottlenecks of the mixed design ===")
    for bottleneck in identify_bottlenecks(mixed, top=4):
        print(" ", bottleneck.describe())


if __name__ == "__main__":
    main()
