"""Three-layer stacked CIS for slow-motion burst capture (IMX400-style).

Sec. 2.1 of the paper surveys three-layer stacks — pixel / DRAM / logic —
without evaluating one; this example does, sweeping the burst frame rate
and showing where each layer's energy goes.

Run:  python examples/three_layer_burst.py
"""

from repro import units
from repro.area import layer_power_density
from repro.area.model import format_density
from repro.usecases.threelayer import build_three_layer, run_three_layer


def main():
    print("=== The stack ===")
    _, system, _ = build_three_layer()
    print(system.describe())

    print("\n=== Burst-rate sweep ===")
    for fps in (120, 240, 480, 960):
        report = run_three_layer(burst_fps=fps)
        per_layer = report.by_layer()
        layers = "  ".join(
            f"{layer}: {units.format_energy(energy)}"
            for layer, energy in per_layer.items())
        print(f"  {fps:4.0f} FPS: "
              f"{units.format_power(report.total_power):>9}  ({layers})")

    print("\n=== Power density per layer at 960 FPS ===")
    report = run_three_layer(burst_fps=960)
    for layer, density in layer_power_density(system, report).items():
        print(f"  {layer:8s} {format_density(density)}")


if __name__ == "__main__":
    main()
