"""Functional (noise-aware) simulation of a sensing chain.

Demonstrates the thermal argument of Sec. 6.2 quantitatively: higher power
density warms the stack, dark current doubles every ~7 K, and low-light
SNR degrades — the imaging-quality cost of aggressive in-sensor compute.

Run:  python examples/functional_noise_sim.py
"""

import numpy as np

from repro import units
from repro.noise import (
    FunctionalPipeline,
    FunctionalPixel,
    thermal_noise_sigma,
)


def main():
    print("=== kT/C noise vs sampling capacitor (Eq. 6 in electrons) ===")
    for capacitance in (1 * units.fF, 10 * units.fF, 100 * units.fF):
        sigma = thermal_noise_sigma(capacitance,
                                    conversion_gain_uv_per_e=50.0)
        print(f"  C = {capacitance / units.fF:5.0f} fF -> "
              f"{sigma:5.1f} e- RMS")

    print("\n=== SNR vs illumination (shot-noise-limited regime) ===")
    pixel = FunctionalPixel(full_well_electrons=10000,
                            dark_current_e_per_s=15.0,
                            read_noise_electrons=2.0,
                            adc_bits=10)
    pipeline = FunctionalPipeline(pixel, exposure_time=1 / 30, seed=42)
    for light in (50, 200, 1000, 5000):
        print(f"  {light:5d} e- scene -> "
              f"{pipeline.measure_snr(light):5.1f} dB")
    print(f"  dynamic range: {pipeline.dynamic_range_db():.1f} dB")

    print("\n=== Thermal impact of stacked-compute power density ===")
    for delta_k in (0, 7, 14, 21):
        hot_pixel = FunctionalPixel(full_well_electrons=10000,
                                    dark_current_e_per_s=500.0,
                                    read_noise_electrons=2.0,
                                    adc_bits=10,
                                    temperature=300.0 + delta_k)
        hot = FunctionalPipeline(hot_pixel, exposure_time=1 / 30, seed=42)
        print(f"  +{delta_k:2d} K -> low-light SNR "
              f"{hot.measure_snr(100):5.1f} dB")

    print("\n=== One noisy capture ===")
    scene = np.linspace(100, 5000, 8 * 8).reshape(8, 8)
    capture = pipeline.capture(scene)
    print("  mean in:  ", np.round(scene.mean(), 1), "e-")
    print("  mean out: ", np.round(capture.mean(), 1), "e-")


if __name__ == "__main__":
    main()
