"""Tests for the energy report."""

import pytest

from repro import units
from repro.energy.report import Category, EnergyEntry, EnergyReport
from repro.exceptions import ConfigurationError


def _report():
    report = EnergyReport(system_name="S", frame_rate=30,
                          frame_time=1 / 30, digital_latency=1e-3,
                          analog_stage_delay=5e-3)
    report.add(EnergyEntry("PixelArray/APS", Category.SEN, "sensor",
                           2 * units.nJ, stage="Input"))
    report.add(EnergyEntry("ADCArray/ADC", Category.SEN, "sensor",
                           3 * units.nJ, stage="Input"))
    report.add(EnergyEntry("PE", Category.COMP_D, "compute",
                           4 * units.nJ, stage="Conv"))
    report.add(EnergyEntry("Buf", Category.MEM_D, "compute", 1 * units.nJ,
                           stage="Conv"))
    report.add(EnergyEntry("MIPI:out", Category.MIPI, "sensor",
                           10 * units.nJ))
    return report


class TestRollups:
    def test_total(self):
        assert _report().total_energy == pytest.approx(20 * units.nJ)

    def test_total_power(self):
        assert _report().total_power == pytest.approx(600 * units.nW)

    def test_by_category(self):
        rollup = _report().by_category()
        assert rollup[Category.SEN] == pytest.approx(5 * units.nJ)
        assert rollup[Category.COMP_D] == pytest.approx(4 * units.nJ)
        assert Category.UTSV not in rollup

    def test_by_layer(self):
        rollup = _report().by_layer()
        assert rollup["sensor"] == pytest.approx(15 * units.nJ)
        assert rollup["compute"] == pytest.approx(5 * units.nJ)

    def test_by_component(self):
        rollup = _report().by_component()
        assert rollup["PE"] == pytest.approx(4 * units.nJ)

    def test_by_stage_skips_untagged(self):
        rollup = _report().by_stage()
        assert rollup["Conv"] == pytest.approx(5 * units.nJ)
        assert "MIPI:out" not in rollup

    def test_category_energy_zero_for_absent(self):
        assert _report().category_energy(Category.UTSV) == 0.0

    def test_domain_aggregates(self):
        report = _report()
        assert report.analog_energy == pytest.approx(5 * units.nJ)
        assert report.digital_energy == pytest.approx(5 * units.nJ)
        assert report.communication_energy == pytest.approx(10 * units.nJ)

    def test_energy_per_pixel(self):
        assert _report().energy_per_pixel(1000) == pytest.approx(
            20 * units.pJ)

    def test_energy_per_pixel_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            _report().energy_per_pixel(0)


class TestEntries:
    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyEntry("X", Category.SEN, "sensor", -1.0)

    def test_table_rendering(self):
        text = _report().to_table()
        assert "SEN" in text
        assert "MIPI" in text
        assert "%" in text
