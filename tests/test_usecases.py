"""Tests for the Sec. 6 use cases: every Finding's shape is asserted here."""

import pytest

from repro import units
from repro.area import power_density
from repro.area.model import CPU_POWER_DENSITY, GPU_POWER_DENSITY
from repro.energy.report import Category
from repro.exceptions import ConfigurationError
from repro.usecases import (
    UseCaseConfig,
    build_edgaze,
    build_edgaze_mixed,
    build_rhythmic,
    edgaze_configs,
    rhythmic_configs,
    run_edgaze,
    run_edgaze_mixed,
    run_rhythmic,
)


@pytest.fixture(scope="module")
def rhythmic():
    return {cfg.label: run_rhythmic(cfg) for cfg in rhythmic_configs()}


@pytest.fixture(scope="module")
def edgaze():
    return {cfg.label: run_edgaze(cfg) for cfg in edgaze_configs()}


@pytest.fixture(scope="module")
def edgaze_mixed():
    return {node: run_edgaze_mixed(node) for node in (130, 65)}


class TestConfigGrid:
    def test_rhythmic_grid(self):
        assert len(rhythmic_configs()) == 6

    def test_edgaze_grid(self):
        assert len(edgaze_configs()) == 8

    def test_invalid_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            UseCaseConfig("4D-In", 65)

    def test_invalid_node_rejected(self):
        with pytest.raises(ConfigurationError):
            UseCaseConfig("2D-In", 90)

    def test_placement_properties(self):
        assert UseCaseConfig("2D-Off", 65).digital_node == 22
        assert UseCaseConfig("2D-In", 65).digital_node == 65
        assert UseCaseConfig("3D-In", 130).is_stacked
        assert UseCaseConfig("3D-In-STT", 130).uses_stt_ram


class TestFig9aRhythmic:
    """Finding 1, communication-dominant workload."""

    def test_in_sensor_beats_off_sensor(self, rhythmic):
        for node in (130, 65):
            assert (rhythmic[f"2D-In ({node}nm)"].total_energy
                    < rhythmic[f"2D-Off ({node}nm)"].total_energy)

    def test_savings_grow_with_newer_cis_node(self, rhythmic):
        """Paper: 14.5 % saving at 130 nm grows to 33.4 % at 65 nm."""

        def saving(node):
            off = rhythmic[f"2D-Off ({node}nm)"].total_energy
            inside = rhythmic[f"2D-In ({node}nm)"].total_energy
            return 1.0 - inside / off

        assert saving(65) > saving(130)
        assert 0.05 < saving(130) < 0.35
        assert 0.20 < saving(65) < 0.50

    def test_mipi_dominates_off_sensor(self, rhythmic):
        report = rhythmic["2D-Off (65nm)"]
        assert report.category_energy(Category.MIPI) \
            > 0.5 * report.total_energy

    def test_roi_halves_mipi_volume(self, rhythmic):
        off = rhythmic["2D-Off (65nm)"].category_energy(Category.MIPI)
        inside = rhythmic["2D-In (65nm)"].category_energy(Category.MIPI)
        assert inside == pytest.approx(off / 2, rel=0.01)

    def test_3d_beats_2d_in(self, rhythmic):
        """Paper: 3D integration saves ~15.8 % on average over 2D-In."""
        savings = []
        for node in (130, 65):
            base = rhythmic[f"2D-In ({node}nm)"].total_energy
            stacked = rhythmic[f"3D-In ({node}nm)"].total_energy
            savings.append(1.0 - stacked / base)
        average = sum(savings) / len(savings)
        assert 0.05 < average < 0.35

    def test_utsv_cost_insignificant(self, rhythmic):
        report = rhythmic["3D-In (65nm)"]
        assert report.category_energy(Category.UTSV) \
            < 0.05 * report.total_energy


class TestFig9bEdGaze:
    """Finding 1/2, compute-dominant workload."""

    def test_in_sensor_loses_to_off_sensor(self, edgaze):
        for node in (130, 65):
            assert (edgaze[f"2D-In ({node}nm)"].total_energy
                    > edgaze[f"2D-Off ({node}nm)"].total_energy)

    def test_65nm_worse_than_130nm_in_sensor(self, edgaze):
        """The 65 nm leakage anomaly: newer CIS node, higher energy."""
        assert (edgaze["2D-In (65nm)"].total_energy
                > edgaze["2D-In (130nm)"].total_energy)

    def test_communication_light_off_sensor(self, edgaze):
        """Paper: comm is ~15 % of the off-sensor total."""
        report = edgaze["2D-Off (65nm)"]
        share = report.communication_energy / report.total_energy
        assert share < 0.45

    def test_memory_dominates_2d_in_65nm(self, edgaze):
        """Paper: memory is 71.3 % of the 2D-In 65 nm total."""
        report = edgaze["2D-In (65nm)"]
        share = report.category_energy(Category.MEM_D) / report.total_energy
        assert 0.55 < share < 0.90

    def test_3d_stacking_reduces_energy(self, edgaze):
        """Paper: 38.5 % average reduction from 3D stacking."""
        for node in (130, 65):
            base = edgaze[f"2D-In ({node}nm)"].total_energy
            stacked = edgaze[f"3D-In ({node}nm)"].total_energy
            assert stacked < base

    def test_memory_still_dominates_3d_in(self, edgaze):
        report = edgaze["3D-In (65nm)"]
        assert report.category_energy(Category.MEM_D) \
            > 0.4 * report.total_energy

    def test_stt_ram_slashes_3d_energy(self, edgaze):
        """Paper: STT-RAM cuts ~69 % off 3D-In by removing leakage."""
        for node in (130, 65):
            sram = edgaze[f"3D-In ({node}nm)"].total_energy
            stt = edgaze[f"3D-In-STT ({node}nm)"].total_energy
            assert 0.35 < 1.0 - stt / sram < 0.85

    def test_frame_buffer_never_gated(self):
        _, system, _ = build_edgaze(UseCaseConfig("2D-In", 65))
        assert system.find_unit("FrameBuffer").duty_alpha == 1.0


class TestFig11to13Mixed:
    """Finding 3, analog vs digital processing."""

    def test_mixed_beats_fully_digital(self, edgaze, edgaze_mixed):
        for node in (130, 65):
            digital = edgaze[f"2D-In ({node}nm)"].total_energy
            mixed = edgaze_mixed[node].total_energy
            assert mixed < digital

    def test_savings_bigger_at_65nm(self, edgaze, edgaze_mixed):
        """Paper: 38.8 % at 130 nm, 77.1 % at 65 nm (leaky SRAM removed)."""

        def saving(node):
            digital = edgaze[f"2D-In ({node}nm)"].total_energy
            return 1.0 - edgaze_mixed[node].total_energy / digital

        assert saving(65) > saving(130)
        assert saving(65) > 0.30

    def test_sen_drops_without_adcs(self, edgaze, edgaze_mixed):
        for node in (130, 65):
            digital_sen = edgaze[f"2D-In ({node}nm)"].category_energy(
                Category.SEN)
            mixed_sen = edgaze_mixed[node].category_energy(Category.SEN)
            assert mixed_sen < digital_sen

    def test_mem_d_shrinks_most_at_65nm(self, edgaze, edgaze_mixed):
        digital = edgaze["2D-In (65nm)"].category_energy(Category.MEM_D)
        mixed = edgaze_mixed[65].category_energy(Category.MEM_D)
        assert mixed < 0.8 * digital

    def test_fig12_dnn_stage_dominates_after_mixing(self, edgaze_mixed):
        for node in (130, 65):
            stages = edgaze_mixed[node].by_stage()
            total = sum(stages.values())
            assert stages["RoiDNN"] > 0.6 * total

    def test_fig12_first_stages_dominate_before_mixing_at_65nm(self,
                                                               edgaze):
        stages = edgaze["2D-In (65nm)"].by_stage()
        first_two = (stages.get("Downsample", 0.0)
                     + stages.get("FrameSubtract", 0.0)
                     + stages.get("Input", 0.0))
        assert first_two > stages["RoiDNN"]

    def test_fig13_memory_down_compute_up(self, edgaze, edgaze_mixed):
        """First two stages: memory shrinks, compute slightly grows."""
        digital = edgaze["2D-In (65nm)"]
        mixed = edgaze_mixed[65]
        digital_first_mem = sum(
            e.energy for e in digital.entries
            if e.stage in ("Downsample", "FrameSubtract", "Input")
            and e.category in (Category.MEM_D, Category.MEM_A))
        mixed_first_mem = sum(
            e.energy for e in mixed.entries
            if e.stage in ("Downsample", "FrameSubtract", "Input")
            and e.category in (Category.MEM_D, Category.MEM_A))
        digital_first_comp = sum(
            e.energy for e in digital.entries
            if e.stage in ("Downsample", "FrameSubtract")
            and e.category in (Category.COMP_D, Category.COMP_A))
        mixed_first_comp = sum(
            e.energy for e in mixed.entries
            if e.stage in ("Downsample", "FrameSubtract")
            and e.category in (Category.COMP_D, Category.COMP_A))
        assert mixed_first_mem < digital_first_mem
        assert mixed_first_comp > digital_first_comp

    def test_analog_path_has_analog_entries(self, edgaze_mixed):
        report = edgaze_mixed[65]
        assert report.category_energy(Category.MEM_A) > 0
        assert report.category_energy(Category.COMP_A) > 0


class TestTable3PowerDensity:
    def test_all_densities_far_below_cpu_gpu(self):
        """Sec. 6.2: three to four orders below CPU/GPU hotspots."""
        for cfg in (UseCaseConfig("2D-In", 65), UseCaseConfig("3D-In", 65)):
            stages, system, mapping = build_edgaze(cfg)
            report = run_edgaze(cfg)
            density = power_density(system, report)
            assert density < 0.05 * GPU_POWER_DENSITY
            assert density < 0.02 * CPU_POWER_DENSITY

    def test_rhythmic_density_insensitive_to_stacking(self):
        """Paper: communication-dominant Rhythmic shows no significant
        density difference across variants."""
        densities = {}
        for placement in ("2D-Off", "3D-In"):
            cfg = UseCaseConfig(placement, 130)
            _, system, _ = build_rhythmic(cfg)
            densities[placement] = power_density(system, run_rhythmic(cfg))
        ratio = densities["3D-In"] / densities["2D-Off"]
        assert 0.5 < ratio < 2.0

    def test_edgaze_65nm_2d_in_density_highest(self):
        """Paper Table 3 (65/22): 2D-In 2.24 beats 3D-In 0.70 because of
        65 nm leakage."""
        densities = {}
        for placement in ("2D-Off", "2D-In", "3D-In"):
            cfg = UseCaseConfig(placement, 65)
            _, system, _ = build_edgaze(cfg)
            densities[placement] = power_density(system, run_edgaze(cfg))
        assert densities["2D-In"] > densities["3D-In"]
        assert densities["2D-In"] > densities["2D-Off"]
