"""Tests for the design-analysis tooling (bottlenecks, compare, sweeps)."""

import pytest

from repro import simulate, units
from repro.analysis import (
    compare_reports,
    dominant_category,
    identify_bottlenecks,
    savings_fraction,
    sweep_frame_rate,
    sweep_nodes,
)
from repro.energy.report import Category, EnergyEntry, EnergyReport
from repro.exceptions import ConfigurationError
from repro.usecases import UseCaseConfig, run_edgaze
from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


def _fig5_report():
    return simulate(build_fig5_stages(), build_fig5_system(),
                    dict(FIG5_MAPPING), frame_rate=30)


def _fig5_builder():
    return (build_fig5_stages(), build_fig5_system(), dict(FIG5_MAPPING))


class TestBottlenecks:
    def test_fig5_bottleneck_is_mipi(self):
        """The tiny example is dominated by the off-chip link."""
        ranked = identify_bottlenecks(_fig5_report())
        assert ranked, "expected at least one bottleneck"
        assert ranked[0].category is Category.MIPI
        assert ranked[0].share > 0.5

    def test_edgaze_bottleneck_is_memory(self):
        """2D-In Ed-Gaze at 65 nm: the frame buffer leads (Finding 1)."""
        report = run_edgaze(UseCaseConfig("2D-In", 65))
        ranked = identify_bottlenecks(report)
        assert ranked[0].name == "FrameBuffer"
        assert ranked[0].category is Category.MEM_D

    def test_shares_ordered_and_bounded(self):
        ranked = identify_bottlenecks(_fig5_report(), top=10, min_share=0.0)
        shares = [b.share for b in ranked]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) <= 1.0 + 1e-9

    def test_min_share_filters(self):
        ranked = identify_bottlenecks(_fig5_report(), top=10, min_share=0.5)
        assert all(b.share >= 0.5 for b in ranked)

    def test_hints_present(self):
        for bottleneck in identify_bottlenecks(_fig5_report()):
            assert bottleneck.hint
            assert bottleneck.describe()

    def test_parameter_validation(self):
        report = _fig5_report()
        with pytest.raises(ConfigurationError):
            identify_bottlenecks(report, top=0)
        with pytest.raises(ConfigurationError):
            identify_bottlenecks(report, min_share=1.0)

    def test_dominant_category(self):
        assert dominant_category(_fig5_report()) is Category.MIPI

    def test_empty_report_no_dominant(self):
        empty = EnergyReport(system_name="E", frame_rate=30,
                             frame_time=1 / 30, digital_latency=0,
                             analog_stage_delay=1e-3)
        assert dominant_category(empty) is None
        assert identify_bottlenecks(empty) == []


class TestCompare:
    def test_3d_vs_2d_edgaze(self):
        """The Finding 2 comparison via the analysis API."""
        baseline = run_edgaze(UseCaseConfig("2D-In", 65))
        candidate = run_edgaze(UseCaseConfig("3D-In", 65))
        delta = compare_reports(baseline, candidate)
        assert delta.total_delta < 0
        assert delta.savings_fraction > 0.3
        assert delta.biggest_mover() is Category.MEM_D

    def test_stt_comparison_attributes_to_memory(self):
        baseline = run_edgaze(UseCaseConfig("3D-In", 65))
        candidate = run_edgaze(UseCaseConfig("3D-In-STT", 65))
        delta = compare_reports(baseline, candidate)
        assert delta.by_category[Category.MEM_D] < 0
        assert abs(delta.by_category[Category.MEM_D]) > 0.9 * abs(
            delta.total_delta)

    def test_savings_fraction_shorthand(self):
        baseline = run_edgaze(UseCaseConfig("3D-In", 65))
        candidate = run_edgaze(UseCaseConfig("3D-In-STT", 65))
        assert savings_fraction(baseline, candidate) == pytest.approx(
            compare_reports(baseline, candidate).savings_fraction)

    def test_describe_mentions_direction(self):
        baseline = run_edgaze(UseCaseConfig("2D-In", 65))
        candidate = run_edgaze(UseCaseConfig("3D-In", 65))
        text = compare_reports(baseline, candidate).describe()
        assert "saves" in text

    def test_empty_baseline_rejected(self):
        empty = EnergyReport(system_name="E", frame_rate=30,
                             frame_time=1 / 30, digital_latency=0,
                             analog_stage_delay=1e-3)
        with pytest.raises(ConfigurationError):
            compare_reports(empty, _fig5_report())


class TestSweeps:
    def test_frame_rate_sweep_shapes(self):
        points = sweep_frame_rate(_fig5_builder, [15, 30, 60, 120])
        assert len(points) == 4
        assert all(p.feasible for p in points)

    def test_sweep_marks_infeasible_points(self):
        """Absurd FPS targets fail with a TimingError, not an exception."""
        points = sweep_frame_rate(_fig5_builder, [30, 1e7])
        assert points[0].feasible
        assert not points[1].feasible
        assert "re-design" in points[1].failure

    def test_node_sweep(self):
        from repro.usecases.edgaze import build_edgaze

        def builder_for_node(node):
            return lambda: build_edgaze(UseCaseConfig("2D-In", int(node)))

        points = sweep_nodes(builder_for_node, [130, 65])
        assert all(p.feasible for p in points)
        # The 65 nm leakage anomaly shows up in the sweep too.
        assert points[1].report.total_energy > points[0].report.total_energy

    def test_generic_parameter_sweep(self):
        """sweep_parameter drives any builder argument, here the node."""
        from repro.analysis import sweep_parameter
        from repro.usecases.edgaze import build_edgaze

        points = sweep_parameter(
            lambda node: build_edgaze(UseCaseConfig("2D-In", int(node))),
            [130, 65])
        assert [p.parameter for p in points] == [130, 65]
        assert all(p.feasible for p in points)

    def test_sweeps_accept_design_builders(self):
        """Builders may return a Design instead of the legacy triple."""
        from repro.usecases.fig5 import build_fig5_design

        points = sweep_frame_rate(build_fig5_design, [30, 60])
        assert all(p.feasible for p in points)

    def test_sweep_shares_a_simulator_cache(self):
        """An explicit session dedups identical points across sweeps."""
        from repro.api import Simulator
        from repro.analysis import sweep_parameter
        from repro.usecases.fig5 import build_fig5_design

        simulator = Simulator()
        sweep_parameter(lambda _: build_fig5_design(), [1, 2],
                        simulator=simulator)
        assert simulator.cache_info().size == 1  # same design both times

    def test_builder_failure_marks_the_point_not_the_sweep(self):
        """A value the builder itself rejects stays an infeasible point."""
        from repro.analysis import sweep_parameter
        from repro.usecases.fig5 import build_fig5_design

        def builder(value):
            if value == 2:
                raise ConfigurationError("value 2 is unbuildable")
            return build_fig5_design()

        points = sweep_parameter(builder, [1, 2, 3])
        assert [p.parameter for p in points] == [1, 2, 3]
        assert points[0].feasible and points[2].feasible
        assert not points[1].feasible
        assert "unbuildable" in points[1].failure

    def test_empty_sweeps_rejected(self):
        from repro.analysis import sweep_parameter
        with pytest.raises(ConfigurationError):
            sweep_frame_rate(_fig5_builder, [])
        with pytest.raises(ConfigurationError):
            sweep_nodes(lambda n: _fig5_builder, [])
        with pytest.raises(ConfigurationError):
            sweep_parameter(lambda v: _fig5_builder(), [])


class TestPareto:
    @staticmethod
    def _points():
        from repro.analysis import design_point
        from repro.usecases.edgaze import build_edgaze
        points = []
        for placement in ("2D-Off", "2D-In", "3D-In", "3D-In-STT"):
            cfg = UseCaseConfig(placement, 65)
            _, system, _ = build_edgaze(cfg)
            points.append(design_point(placement, system, run_edgaze(cfg)))
        return points

    def test_edgaze_pareto_front(self):
        """2D-In at 65 nm is strictly dominated: more energy AND denser."""
        from repro.analysis import dominated_points, pareto_front
        points = self._points()
        front_labels = {p.label for p in pareto_front(points)}
        dominated_labels = {p.label for p in dominated_points(points)}
        assert "2D-In" in dominated_labels
        assert "3D-In-STT" in front_labels

    def test_front_sorted_and_nondominated(self):
        from repro.analysis import pareto_front
        front = pareto_front(self._points())
        energies = [p.energy_per_frame for p in front]
        assert energies == sorted(energies)
        for p in front:
            assert not any(q.dominates(p) for q in front)

    def test_dominance_semantics(self):
        from repro.analysis.pareto import DesignPoint
        a = DesignPoint("a", 1.0, 1.0)
        b = DesignPoint("b", 2.0, 2.0)
        tie = DesignPoint("t", 1.0, 1.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(tie)

    def test_empty_rejected(self):
        from repro.analysis import pareto_front
        with pytest.raises(ConfigurationError):
            pareto_front([])

    def test_describe(self):
        from repro.analysis.pareto import DesignPoint
        text = DesignPoint("x", 1e-6, 0.5).describe()
        assert "mW/mm^2" in text
