"""Tests for area estimation and power density (Table 3 methodology)."""

import pytest

from repro import simulate, units
from repro.area import estimate_area, layer_power_density, power_density
from repro.area.model import CPU_POWER_DENSITY, format_density
from repro.energy.report import Category, EnergyEntry, EnergyReport
from repro.exceptions import ConfigurationError
from repro.hw.chip import SensorSystem
from repro.hw.digital.memory import FIFO
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


def _report_with(entries, fps=30):
    report = EnergyReport(system_name="S", frame_rate=fps, frame_time=1 / fps,
                          digital_latency=0.0, analog_stage_delay=1e-3)
    report.extend(entries)
    return report


class TestAreaEstimation:
    def test_pixel_array_area_counted(self):
        system = build_fig5_system()
        areas = estimate_area(system)
        assert areas.by_layer[SENSOR_LAYER] >= system.pixel_array_area

    def test_memory_area_counted_per_layer(self):
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65),
                                           Layer(COMPUTE_LAYER, 22)])
        system.add_memory(FIFO("F", COMPUTE_LAYER, size=(1, 4),
                               write_energy_per_word=0,
                               read_energy_per_word=0, area=3e-6))
        areas = estimate_area(system)
        assert areas.by_layer[COMPUTE_LAYER] == pytest.approx(3e-6)

    def test_off_chip_excluded(self):
        system = build_fig5_system()
        system.add_offchip_host(22)
        areas = estimate_area(system)
        assert "off_chip" not in areas.by_layer


class TestPowerDensity:
    def test_2d_density_is_power_over_total_area(self):
        system = build_fig5_system()
        report = _report_with([
            EnergyEntry("X", Category.SEN, SENSOR_LAYER, 1 * units.nJ)])
        density = power_density(system, report)
        expected = (1e-9 * 30) / estimate_area(system).total
        assert density == pytest.approx(expected)

    def test_stacked_density_uses_footprint_and_max_layer(self):
        """Stacked dies share the chip footprint; the chip density is the
        hottest layer's power over that footprint."""
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65),
                                           Layer(COMPUTE_LAYER, 22)])
        system.set_pixel_array_geometry(100, 100)
        system.add_memory(FIFO("F", COMPUTE_LAYER, size=(1, 4),
                               write_energy_per_word=0,
                               read_energy_per_word=0, area=1e-8))
        # The pixel array must be registered so its layer gets area.
        from repro.hw.analog.array import AnalogArray
        from repro.hw.analog.components import ActivePixelSensor
        pixels = AnalogArray("Pixels", SENSOR_LAYER)
        pixels.add_component(ActivePixelSensor(), (100, 100))
        system.add_analog_array(pixels)
        report = _report_with([
            EnergyEntry("Sen", Category.SEN, SENSOR_LAYER, 1 * units.nJ),
            EnergyEntry("Hot", Category.COMP_D, COMPUTE_LAYER,
                        3 * units.nJ)])
        densities = layer_power_density(system, report)
        footprint = estimate_area(system).footprint
        assert footprint == pytest.approx(system.pixel_array_area)
        assert densities[COMPUTE_LAYER] == pytest.approx(
            (3e-9 * 30) / footprint)
        assert densities[COMPUTE_LAYER] > densities[SENSOR_LAYER]
        assert power_density(system, report) == pytest.approx(
            densities[COMPUTE_LAYER])

    def test_off_chip_entries_excluded(self):
        system = build_fig5_system()
        system.add_offchip_host(22)
        report = _report_with([
            EnergyEntry("Sen", Category.SEN, SENSOR_LAYER, 1 * units.nJ),
            EnergyEntry("SoC", Category.COMP_D, "off_chip", 100 * units.nJ)])
        density = power_density(system, report)
        expected = (1e-9 * 30) / estimate_area(system).total
        assert density == pytest.approx(expected)

    def test_no_area_raises(self):
        system = SensorSystem("S")
        report = _report_with([
            EnergyEntry("X", Category.SEN, SENSOR_LAYER, 1 * units.nJ)])
        with pytest.raises(ConfigurationError):
            power_density(system, report)

    def test_fig5_density_far_below_cpu(self):
        """Sec. 6.2: sensor densities are orders below CPU hotspots."""
        stages = build_fig5_stages()
        system = build_fig5_system()
        report = simulate(stages, system, dict(FIG5_MAPPING), frame_rate=30)
        density = power_density(system, report)
        assert density < 0.01 * CPU_POWER_DENSITY

    def test_format_density(self):
        text = format_density(0.05 * units.mW / units.mm2)
        assert text == "0.05 mW/mm^2"
