"""Tests for the irregular-algorithm memory-trace hook."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.memlib import DRAMModel, SRAMModel
from repro.sw.trace import MemoryTrace, TraceEvent


class TestTraceEvent:
    def test_valid_event(self):
        event = TraceEvent("R", 64, timestamp=0.5)
        assert event.op == "R"

    def test_invalid_op(self):
        with pytest.raises(ConfigurationError):
            TraceEvent("X", 64)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            TraceEvent("R", 0)

    def test_negative_timestamp(self):
        with pytest.raises(ConfigurationError):
            TraceEvent("R", 64, timestamp=-1.0)


class TestParsing:
    def test_basic_format(self):
        trace = MemoryTrace.parse("R 64\nW 128\nR 64\n")
        assert trace.num_reads == 2
        assert trace.num_writes == 1
        assert trace.read_bytes == 128
        assert trace.write_bytes == 128

    def test_comments_and_blank_lines(self):
        trace = MemoryTrace.parse(
            "# header\nR 64  # load\n\nW 32\n")
        assert len(trace) == 2

    def test_timestamps(self):
        trace = MemoryTrace.parse("R 64 0.0\nW 64 0.5\nR 64 2.0\n")
        assert trace.duration == pytest.approx(2.0)

    def test_lowercase_ops_accepted(self):
        trace = MemoryTrace.parse("r 8\nw 8\n")
        assert trace.num_reads == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            MemoryTrace.parse("R 64\nR sixty-four\n")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ConfigurationError, match="expected"):
            MemoryTrace.parse("R\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            MemoryTrace.parse("# only comments\n")

    def test_partial_timestamps_rejected(self):
        with pytest.raises(ConfigurationError, match="all events or none"):
            MemoryTrace.parse("R 64 0.0\nW 64\n")

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            MemoryTrace.parse("R 64 1.0\nW 64 0.5\n")


class TestFromCounts:
    def test_aggregate_construction(self):
        trace = MemoryTrace.from_counts(reads=100, writes=50,
                                        bytes_per_access=4)
        assert trace.read_bytes == 400
        assert trace.write_bytes == 200

    def test_zero_accesses_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTrace.from_counts(reads=0, writes=0)


class TestEnergyAgainstMemories:
    def test_sram_billing(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        trace = MemoryTrace.from_counts(reads=1000, writes=500,
                                        bytes_per_access=8)
        dynamic, leakage = trace.energy_against(sram, frame_time=1 / 30)
        expected = (8000 * sram.read_energy_per_byte
                    + 4000 * sram.write_energy_per_byte)
        assert dynamic == pytest.approx(expected)
        assert leakage == pytest.approx(sram.leakage_power / 30)

    def test_dram_billing(self):
        """The DRAMPower-style integration the paper mentions."""
        dram = DRAMModel(capacity_bytes=8 * units.MB)
        trace = MemoryTrace.parse("R 4096\nW 4096\n")
        dynamic, _ = trace.energy_against(dram)
        assert dynamic == pytest.approx(
            8192 * dram.access_energy_per_byte)

    def test_timestamped_window_used_for_leakage(self):
        sram = SRAMModel(capacity_bytes=8 * units.KB)
        trace = MemoryTrace.parse("R 64 0.0\nW 64 0.25\n")
        _, leakage = trace.energy_against(sram, frame_time=10.0)
        # The 0.25 s trace window wins over the 10 s frame time.
        assert leakage == pytest.approx(sram.leakage_power * 0.25)

    def test_memory_without_energy_attrs_rejected(self):
        trace = MemoryTrace.parse("R 64\n")
        with pytest.raises(ConfigurationError, match="per-byte"):
            trace.energy_against(object())

    def test_repr(self):
        trace = MemoryTrace.parse("R 64\nW 32\n")
        assert "64" in repr(trace)


class TestSRAM8T:
    def test_8t_reads_cheaper_leaks_more(self):
        """The Sec. 5 customized-8T-vs-6T mismatch, now modelable."""
        six = SRAMModel(capacity_bytes=64 * units.KB, cell_type="6T")
        eight = SRAMModel(capacity_bytes=64 * units.KB, cell_type="8T")
        assert eight.read_energy_per_word < six.read_energy_per_word
        assert eight.leakage_power > six.leakage_power
        assert eight.area > six.area

    def test_unknown_cell_type_rejected(self):
        with pytest.raises(ConfigurationError, match="cell type"):
            SRAMModel(capacity_bytes=8 * units.KB, cell_type="10T")
