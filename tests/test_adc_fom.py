"""Tests for the Walden FoM survey used by non-linear A-Cells."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.adc_fom import (
    FOM_SURVEY,
    adc_energy_per_conversion,
    walden_fom,
)


class TestSurveyDataset:
    def test_survey_is_non_trivial(self):
        assert len(FOM_SURVEY) > 50

    def test_survey_spans_the_published_rate_range(self):
        rates = [p.sample_rate for p in FOM_SURVEY]
        assert min(rates) <= 10 * units.kHz
        assert max(rates) >= 1 * units.GHz

    def test_survey_foms_positive(self):
        assert all(p.fom > 0 for p in FOM_SURVEY)

    def test_survey_deterministic(self):
        """The dataset must be reproducible across imports/runs."""
        from repro.hw.analog.adc_fom import _build_survey
        assert _build_survey() == tuple(FOM_SURVEY)


class TestWaldenLookup:
    def test_flat_floor_below_corner(self):
        """Below ~100 MS/s the median FoM is rate-independent (tens of fJ)."""
        low = walden_fom(1 * units.MHz)
        mid = walden_fom(10 * units.MHz)
        assert low == pytest.approx(mid, rel=0.6)
        assert 1 * units.fJ < low < 200 * units.fJ

    def test_fom_degrades_above_corner(self):
        assert walden_fom(5 * units.GHz) > 3 * walden_fom(10 * units.MHz)

    def test_out_of_range_falls_back_to_envelope(self):
        very_slow = walden_fom(1.0)  # 1 S/s, far below the survey
        assert very_slow > 0

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            walden_fom(0.0)


class TestEnergyPerConversion:
    def test_exponential_in_bits(self):
        e8 = adc_energy_per_conversion(10 * units.MHz, 8)
        e10 = adc_energy_per_conversion(10 * units.MHz, 10)
        assert e10 == pytest.approx(4 * e8)

    def test_10bit_adc_energy_plausible(self):
        """10-bit column ADCs run single-digit to tens of pJ/conversion."""
        energy = adc_energy_per_conversion(1 * units.MHz, 10)
        assert 1 * units.pJ < energy < 100 * units.pJ

    def test_comparator_is_cheap(self):
        """A comparator (1-bit ADC) costs ~2x the FoM floor."""
        energy = adc_energy_per_conversion(1 * units.MHz, 1)
        assert energy < 1 * units.pJ

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            adc_energy_per_conversion(1 * units.MHz, 0)
