"""Golden-number regression guard.

The headline quantities of EXPERIMENTS.md, pinned with tolerances.  A
model change that silently shifts a reproduced result beyond its band
fails here before it corrupts the documented record.
"""

import pytest

from repro import units
from repro.energy.report import Category
from repro.usecases import (
    UseCaseConfig,
    run_edgaze,
    run_edgaze_mixed,
    run_rhythmic,
)
from repro.usecases.fig5 import run_fig5
from repro.validation import run_validation


class TestFig5Goldens:
    def test_total_energy(self):
        report = run_fig5()
        assert report.total_energy == pytest.approx(30.9 * units.nJ,
                                                    rel=0.05)

    def test_digital_latency(self):
        report = run_fig5()
        assert report.digital_latency == pytest.approx(2.57 * units.us,
                                                       rel=0.02)


class TestValidationGoldens:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_validation()

    def test_mape_band(self, summary):
        assert summary.mean_absolute_percentage_error \
            == pytest.approx(0.044, abs=0.02)

    def test_pearson_band(self, summary):
        assert summary.pearson_correlation > 0.9995

    def test_isscc17_estimate(self, summary):
        result = [r for r in summary.results
                  if r.chip.name == "ISSCC'17"][0]
        assert result.estimated_energy_per_pixel == pytest.approx(
            7949 * units.pJ, rel=0.05)

    def test_park_estimate(self, summary):
        result = [r for r in summary.results
                  if r.chip.name == "JSSC'21-II"][0]
        assert result.estimated_energy_per_pixel == pytest.approx(
            51 * units.pJ, rel=0.05)


class TestUseCaseGoldens:
    def test_rhythmic_totals(self):
        expected = {
            "2D-In (130nm)": 92.1,
            "2D-Off (130nm)": 113.0,
            "3D-In (130nm)": 67.9,
            "2D-In (65nm)": 78.2,
        }
        for label, total_uj in expected.items():
            placement, node = label.split(" (")
            config = UseCaseConfig(placement, int(node[:-3]))
            report = run_rhythmic(config)
            assert report.total_energy == pytest.approx(
                total_uj * units.uJ, rel=0.05), label

    def test_edgaze_totals(self):
        expected = {
            "2D-In (65nm)": 235.5,
            "2D-Off (65nm)": 79.1,
            "3D-In (65nm)": 73.0,
            "3D-In-STT (65nm)": 34.1,
            "2D-In (130nm)": 167.6,
        }
        for label, total_uj in expected.items():
            placement, node = label.split(" (")
            config = UseCaseConfig(placement, int(node[:-3]))
            report = run_edgaze(config)
            assert report.total_energy == pytest.approx(
                total_uj * units.uJ, rel=0.05), label

    def test_edgaze_memory_share(self):
        report = run_edgaze(UseCaseConfig("2D-In", 65))
        share = report.category_energy(Category.MEM_D) / report.total_energy
        assert share == pytest.approx(0.734, abs=0.05)

    def test_mixed_totals(self):
        assert run_edgaze_mixed(65).total_energy == pytest.approx(
            115.2 * units.uJ, rel=0.05)
        assert run_edgaze_mixed(130).total_energy == pytest.approx(
            137.4 * units.uJ, rel=0.05)
