"""Tests for stencil arithmetic."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sw.stencil import (
    stencil_ops,
    stencil_output_size,
    stencil_reads,
    volume,
)


class TestOutputSize:
    def test_valid_convolution(self):
        assert stencil_output_size((32, 32, 1), (3, 3, 1), (1, 1, 1)) \
            == (30, 30, 1)

    def test_same_padding_keeps_size(self):
        assert stencil_output_size((32, 32, 1), (3, 3, 1), (1, 1, 1),
                                   padding="same") == (32, 32, 1)

    def test_binning(self):
        assert stencil_output_size((32, 32, 1), (2, 2, 1), (2, 2, 1)) \
            == (16, 16, 1)

    def test_same_padding_with_stride(self):
        assert stencil_output_size((31, 31, 1), (3, 3, 1), (2, 2, 1),
                                   padding="same") == (16, 16, 1)

    def test_two_dim_sizes_get_implicit_channel(self):
        assert stencil_output_size((32, 32), (2, 2), (2, 2)) == (16, 16, 1)

    def test_kernel_larger_than_input_rejected(self):
        with pytest.raises(ConfigurationError):
            stencil_output_size((2, 2, 1), (3, 3, 1), (1, 1, 1))

    def test_invalid_padding_rejected(self):
        with pytest.raises(ConfigurationError):
            stencil_output_size((8, 8, 1), (3, 3, 1), (1, 1, 1),
                                padding="reflect")

    def test_non_positive_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            stencil_output_size((0, 32, 1), (3, 3, 1), (1, 1, 1))


class TestOps:
    def test_conv_macs(self):
        """A 3x3 conv over a 30x30 output = 8100 MACs."""
        assert stencil_ops((30, 30, 1), (3, 3, 1)) == 8100

    def test_ops_per_element_multiplier(self):
        assert stencil_ops((10, 10, 1), (2, 2, 1), ops_per_element=2.0) \
            == 800

    def test_rejects_non_positive_multiplier(self):
        with pytest.raises(ConfigurationError):
            stencil_ops((10, 10, 1), (2, 2, 1), ops_per_element=0)


class TestReadsAndVolume:
    def test_reads_without_reuse(self):
        assert stencil_reads((16, 16, 1), (3, 3, 1)) == 16 * 16 * 9

    def test_volume(self):
        assert volume((4, 5, 3)) == 60
        assert volume((4, 5)) == 20
