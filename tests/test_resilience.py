"""Fault-tolerance tests: retry/timeout/backoff, pool healing and
quarantine, deterministic fault injection, disk-cache degradation, the
serve job journal, and daemon restart recovery."""

import contextlib
import json
import os
import signal
import subprocess
import sys
import time
import warnings
from concurrent.futures import BrokenExecutor
from pathlib import Path

import pytest

from repro.api import Design, SimOptions, Simulator
from repro.api.diskcache import DiskResultCache
from repro.exceptions import ConfigurationError, TransientSimError
from repro.explore import choice, explore
from repro.resilience import (
    FAULTS_ENV,
    FailureClass,
    FaultInjector,
    FaultPlan,
    JsonlJournal,
    QUARANTINE_THRESHOLD,
    RetryPolicy,
    classify,
    get_injector,
    reset_injector,
)
from repro.resilience.policy import (
    RETRY_ATTEMPTS_ENV,
    RETRY_BASE_DELAY_ENV,
    TASK_TIMEOUT_ENV,
)
from repro.serve import (
    BackgroundServer,
    JobJournal,
    ServeClient,
    ServeError,
    StreamBuffer,
)
from repro.serve.jobs import Job, JobState
from repro.usecases.fig5 import build_fig5_design

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Every test starts and ends with an inert injector singleton."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_injector()
    yield
    reset_injector()


def _named_fig5(name):
    """The fig5 design under a distinct name (→ distinct cache key)."""
    payload = build_fig5_design().to_dict()
    payload["name"] = name
    return Design.from_dict(payload)


# --- failure classification and retry policy --------------------------------

class TestClassify:
    def test_typed_exceptions_map_to_their_class(self):
        from repro.exceptions import (ExecutionTimeoutError,
                                      WorkerCrashError)
        assert classify(TransientSimError("x")) is FailureClass.TRANSIENT
        assert classify(ExecutionTimeoutError("x")) is FailureClass.TIMEOUT
        assert classify(WorkerCrashError("x")) is FailureClass.POOL_CRASH
        assert classify(BrokenExecutor("x")) is FailureClass.POOL_CRASH
        assert classify(ConfigurationError("x")) is FailureClass.PERMANENT

    def test_raw_io_failures_are_transient(self):
        assert classify(OSError("io")) is FailureClass.TRANSIENT
        assert classify(ConnectionResetError("drop")) \
            is FailureClass.TRANSIENT

    def test_unknown_and_absent_failures_are_permanent(self):
        assert classify(ValueError("x")) is FailureClass.PERMANENT
        assert classify(None) is FailureClass.PERMANENT


class TestRetryPolicy:
    def test_retryable_matrix(self):
        policy = RetryPolicy()
        assert policy.retryable(FailureClass.TRANSIENT)
        assert not policy.retryable(FailureClass.PERMANENT)
        assert not policy.retryable(FailureClass.TIMEOUT)
        assert not policy.retryable(FailureClass.POOL_CRASH)
        assert policy.replace(retry_timeouts=True).retryable(
            FailureClass.TIMEOUT)

    def test_backoff_is_deterministic_capped_and_exponential(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0,
                             jitter=0.25)
        assert policy.backoff_s(0, "k") == policy.backoff_s(0, "k")
        assert policy.backoff_s(0, "k") != policy.backoff_s(0, "other")
        assert policy.backoff_s(1, "k") > policy.backoff_s(0, "k") * 1.5
        # Capped at max_delay plus full jitter, no matter the attempt.
        assert policy.backoff_s(40, "k") <= 1.0 * 1.25
        assert RetryPolicy(base_delay_s=0.0).backoff_s(3, "k") == 0.0
        assert RetryPolicy(jitter=0.0, base_delay_s=0.1).backoff_s(1) \
            == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)

    def test_from_env_overrides(self):
        policy = RetryPolicy.from_env({RETRY_ATTEMPTS_ENV: "5",
                                       RETRY_BASE_DELAY_ENV: "0.5",
                                       TASK_TIMEOUT_ENV: "7.5"})
        assert policy.max_attempts == 5
        assert policy.base_delay_s == 0.5
        assert policy.timeout_s == 7.5
        assert RetryPolicy.from_env({}) == RetryPolicy()
        with pytest.raises(ConfigurationError):
            RetryPolicy.from_env({RETRY_ATTEMPTS_ENV: "lots"})


# --- the deterministic fault-injection harness ------------------------------

class TestFaultPlan:
    def test_from_env_unset_is_inactive(self):
        plan = FaultPlan.from_env({})
        assert not plan.active
        assert not FaultInjector(plan).active

    def test_env_json_round_trip(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, json.dumps(
            {"seed": 7, "transient_rate": 0.25}))
        injector = reset_injector()
        assert injector.plan.seed == 7
        assert injector.plan.transient_rate == 0.25
        assert injector.active

    def test_bad_configurations_are_typed_errors(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env({FAULTS_ENV: "{not json"})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"kill_rat": 1.0})
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_s=-1.0)

    def test_decisions_are_deterministic_across_injectors(self):
        plan = FaultPlan(seed=42, transient_rate=0.5,
                         transient_max_attempt=9)
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(plan)
            decided = []
            for task in range(20):
                try:
                    injector.before_task(f"task-{task}", f"hash-{task}")
                    decided.append(False)
                except TransientSimError:
                    decided.append(True)
            outcomes.append(decided)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_transient_faults_respect_max_attempt(self):
        injector = FaultInjector(FaultPlan(transient_rate=1.0))
        with pytest.raises(TransientSimError):
            injector.before_task("t", "h", attempt=0)
        injector.before_task("t", "h", attempt=1)  # retries succeed
        assert injector.counters.transients == 1

    def test_disk_faults_raise_enospc(self):
        import errno
        injector = FaultInjector(FaultPlan(disk_error_rate=1.0))
        with pytest.raises(OSError) as excinfo:
            injector.before_disk("put", "entry.json")
        assert excinfo.value.errno == errno.ENOSPC
        assert injector.counters.disk_errors == 1

    def test_inactive_injector_is_a_noop(self):
        injector = get_injector()
        injector.before_task("t", "h")
        injector.before_disk("get", "entry.json")
        assert injector.counters.snapshot() == {
            "kills": 0, "transients": 0, "delays": 0, "disk_errors": 0}


# --- task hardening in Simulator.run_many -----------------------------------

class TestThreadRetries:
    def test_transient_failures_retry_to_success(self):
        reset_injector(FaultPlan(transient_rate=1.0))
        simulator = Simulator(retry=RetryPolicy(max_attempts=3,
                                                base_delay_s=0.0))
        results = simulator.run_many([_named_fig5("rt-a"),
                                      _named_fig5("rt-b")])
        assert all(result.ok for result in results)
        assert simulator.last_batch_stats.retries == 2
        assert simulator.resilience_info()["retries"] == 2

    def test_exhausted_retries_fail_typed_and_uncached(self):
        reset_injector(FaultPlan(transient_rate=1.0,
                                 transient_max_attempt=9))
        simulator = Simulator(retry=RetryPolicy(max_attempts=2,
                                                base_delay_s=0.0))
        [result] = simulator.run_many([_named_fig5("rt-fail")])
        assert not result.ok
        assert result.error_type == "TransientSimError"
        # The transient failure was not cached: with the fault gone the
        # same session re-simulates and succeeds.
        reset_injector()
        [again] = simulator.run_many([_named_fig5("rt-fail")])
        assert again.ok and not again.cached

    def test_healthy_batches_report_zero_counters(self):
        simulator = Simulator()
        results = simulator.run_many([_named_fig5("healthy")])
        assert results[0].ok
        stats = simulator.last_batch_stats
        assert (stats.retries, stats.timeouts, stats.pool_rebuilds,
                stats.quarantined) == (0, 0, 0, 0)


class TestDeadlines:
    def test_thread_deadline_times_out_typed(self):
        reset_injector(FaultPlan(delay_s=5.0))
        simulator = Simulator(retry=RetryPolicy(max_attempts=1,
                                                timeout_s=0.2))
        [result] = simulator.run_many([_named_fig5("slow-thread")])
        assert not result.ok
        assert result.error_type == "ExecutionTimeoutError"
        assert result.elapsed_s == pytest.approx(0.2)
        assert simulator.last_batch_stats.timeouts == 1

    def test_process_deadline_retires_the_hung_pool(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, json.dumps({"delay_s": 30.0}))
        reset_injector()
        with Simulator(executor="process", max_workers=1,
                       retry=RetryPolicy(max_attempts=1,
                                         timeout_s=0.5)) as simulator:
            [result] = simulator.run_many([_named_fig5("slow-proc")])
            assert not result.ok
            assert result.error_type == "ExecutionTimeoutError"
            stats = simulator.last_batch_stats
            assert stats.timeouts == 1
            assert stats.pool_rebuilds >= 1


class TestPoolHealing:
    def test_worker_deaths_heal_and_crash_victims_recover(
            self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, json.dumps({"kill_rate": 1.0}))
        reset_injector()
        with Simulator(executor="process", max_workers=2) as simulator:
            designs = [_named_fig5(f"heal-{i}") for i in range(4)]
            results = simulator.run_many(designs)
            assert all(result.ok for result in results)
            stats = simulator.last_batch_stats
            assert stats.pool_rebuilds >= 1
            assert stats.quarantined == 0

    def test_repeat_crasher_is_quarantined_not_the_batch(
            self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV,
                           json.dumps({"kill_design": "POISON"}))
        reset_injector()
        with Simulator(executor="process", max_workers=2) as simulator:
            designs = [_named_fig5("q-a"), _named_fig5("q-POISON"),
                       _named_fig5("q-b"), _named_fig5("q-c")]
            results = simulator.run_many(designs)
            by_name = {result.design_name: result for result in results}
            poisoned = by_name["q-POISON"]
            assert not poisoned.ok
            assert poisoned.error_type == "WorkerCrashError"
            assert str(QUARANTINE_THRESHOLD) in poisoned.failure
            for name in ("q-a", "q-b", "q-c"):
                assert by_name[name].ok, name
            assert simulator.last_batch_stats.quarantined == 1
            assert simulator.last_batch_stats.pool_rebuilds \
                >= QUARANTINE_THRESHOLD


def _poisonable_fig5(index=0):
    i = int(index)
    suffix = "-POISON" if i == 13 else ""
    return _named_fig5(f"pt-{i:03d}{suffix}")


class TestExploreUnderFaults:
    def test_100_point_explore_survives_a_crashing_design(
            self, monkeypatch):
        """The tentpole acceptance: one design kills its worker every
        time; the exploration still completes with that design
        quarantined and every other point evaluated."""
        monkeypatch.setenv(FAULTS_ENV,
                           json.dumps({"kill_design": "POISON"}))
        reset_injector()
        with Simulator(executor="process", max_workers=4) as simulator:
            result = explore(choice("index", list(range(100))),
                             _poisonable_fig5,
                             objectives=["energy_per_frame"],
                             simulator=simulator)
        assert len(result.points) == 100
        crashed = [point for point in result.points
                   if point.failure_type == "WorkerCrashError"]
        assert len(crashed) == 1
        assert crashed[0].params == {"index": 13}
        feasible = [point for point in result.points if point.feasible]
        assert len(feasible) == 99
        assert result.resilience["quarantined"] == 1
        assert result.resilience["pool_rebuilds"] >= QUARANTINE_THRESHOLD
        # The tally survives serialization (and old documents default).
        document = result.to_dict()
        assert document["resilience"]["quarantined"] == 1
        del document["resilience"]
        from repro.explore import ExplorationResult
        reloaded = ExplorationResult.from_dict(document)
        assert reloaded.resilience["quarantined"] == 0


# --- graceful disk-cache degradation ----------------------------------------

class TestDiskCacheDegradation:
    def test_hard_disk_error_degrades_to_memory_only(self, tmp_path):
        reset_injector(FaultPlan(disk_error_rate=1.0))
        simulator = Simulator(cache_dir=tmp_path)
        design = _named_fig5("disk-a")
        with pytest.warns(RuntimeWarning, match="memory-only"):
            [result] = simulator.run_many([design])
        assert result.ok
        info = simulator.cache_info()
        assert info.disk_disabled
        assert info.disk_errors >= 1
        # The memory tier still serves, and no further warning fires.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            [again] = simulator.run_many([design])
        assert again.ok and again.cached

    def test_disabled_cache_short_circuits(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        reset_injector(FaultPlan(disk_error_rate=1.0))
        design = build_fig5_design()
        result = Simulator(cache=False).run(design)
        with pytest.warns(RuntimeWarning):
            assert not cache.put(design.content_hash, result.options,
                                 result)
        assert cache.disabled
        # Disabled means no further I/O: the injector would raise.
        assert cache.get(design.content_hash, result.options) is None
        assert not cache.put(design.content_hash, result.options, result)
        assert cache.info().disabled
        assert cache.info().errors == 1

    def test_corrupt_entries_count_as_soft_errors(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        design = build_fig5_design()
        result = Simulator(cache=False).run(design)
        assert cache.put(design.content_hash, result.options, result)
        [entry] = sorted(tmp_path.glob("*.json"))
        entry.write_text("{torn")
        assert cache.get(design.content_hash, result.options) is None
        assert not cache.disabled  # soft errors take many to disable
        assert cache.info().errors == 1


# --- the crash-safe JSONL journal -------------------------------------------

class TestJsonlJournal:
    def test_append_and_replay_round_trip(self, tmp_path):
        journal = JsonlJournal(tmp_path / "events.jsonl")
        journal.append({"n": 1})
        journal.append({"n": 2})
        journal.close()
        assert [record["n"] for record in journal.replay()] == [1, 2]
        assert journal.info()["appends"] == 2

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = JsonlJournal(path)
        journal.append({"n": 1})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"n": 2, "torn...')  # SIGKILL mid-append
        assert [record["n"] for record in journal.replay()] == [1]
        assert journal.skipped_corrupt == 1

    def test_rewrite_replaces_history_atomically(self, tmp_path):
        journal = JsonlJournal(tmp_path / "events.jsonl")
        for n in range(5):
            journal.append({"n": n})
        journal.rewrite([{"n": 99}])
        assert [record["n"] for record in journal.replay()] == [99]
        assert journal.info()["rewrites"] == 1

    def test_missing_file_replays_empty(self, tmp_path):
        journal = JsonlJournal(tmp_path / "never-written.jsonl")
        assert list(journal.replay()) == []


class TestJobJournal:
    def _terminal_job(self, number, state=JobState.DONE):
        design = _named_fig5(f"jj-{number}")
        job = Job(f"job-{number:06d}", "run", design.name,
                  (design, SimOptions()))
        job.state = state
        job.result = {"n": number}
        job.finished_at = job.created_at
        return job

    def test_submit_and_terminal_records_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = self._terminal_job(1)
        journal.record_submit(job)
        journal.record_terminal(job)
        snapshots = journal.replay_jobs()
        assert list(snapshots) == ["job-000001"]
        snapshot = snapshots["job-000001"]
        assert snapshot["submit"]["spec"]["design"]["name"] == "jj-1"
        assert snapshot["state"]["state"] == "done"
        assert snapshot["state"]["result"] == {"n": 1}
        journal.close()

    def test_compaction_bounds_terminal_history(self, tmp_path):
        journal = JobJournal(tmp_path)
        for number in range(1, 6):
            job = self._terminal_job(number)
            journal.record_submit(job)
            journal.record_terminal(job)
        journal.compact(journal.replay_jobs(), max_terminal=2)
        survivors = journal.replay_jobs()
        assert list(survivors) == ["job-000004", "job-000005"]
        # Interrupted (non-terminal) jobs are never compacted away.
        queued = Job("job-000009", "run", "jj-9",
                     (_named_fig5("jj-9"), SimOptions()))
        journal.record_submit(queued)
        journal.compact(journal.replay_jobs(), max_terminal=1)
        survivors = journal.replay_jobs()
        assert "job-000009" in survivors
        assert survivors["job-000009"]["state"] is None
        journal.close()

    def test_compaction_races_active_writers_losslessly(self, tmp_path):
        """Concurrent submits during compaction never lose a record.

        Compaction replays the file and rewrites it; before the
        journal-wide lock, a record appended between those two steps
        was silently erased by the rewrite.  Hammer compact() from one
        thread while writers append terminal jobs, then check every
        job survived with its terminal state intact.
        """
        import threading

        journal = JobJournal(tmp_path)
        errors = []
        stop = threading.Event()

        def write(base):
            try:
                for number in range(base, base + 20):
                    job = self._terminal_job(number)
                    journal.record_submit(job)
                    journal.record_terminal(job)
            except Exception as error:  # pragma: no cover - fail loud
                errors.append(error)

        def compactor():
            try:
                while not stop.is_set():
                    journal.compact()
            except Exception as error:  # pragma: no cover - fail loud
                errors.append(error)

        writers = [threading.Thread(target=write, args=(base,))
                   for base in (100, 200, 300)]
        sweeper = threading.Thread(target=compactor)
        sweeper.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=60.0)
        stop.set()
        sweeper.join(timeout=60.0)
        assert errors == []
        survivors = journal.replay_jobs()
        expected = {f"job-{number:06d}" for base in (100, 200, 300)
                    for number in range(base, base + 20)}
        assert set(survivors) == expected
        assert all(snapshot["state"] is not None
                   and snapshot["state"]["state"] == "done"
                   for snapshot in survivors.values())
        journal.close()


# --- serve: bounded streams, client reconnect, restart recovery -------------

class TestStreamRing:
    def test_overflow_drops_oldest_with_truncation_marker(self):
        buffer = StreamBuffer(maxlen=4)
        for i in range(10):
            buffer.append({"event": "point", "i": i})
        events, cursor, _ = buffer.read_from(0)
        assert events[0] == {"event": "truncated", "dropped": 6}
        assert [event["i"] for event in events[1:]] == [6, 7, 8, 9]
        assert cursor == 10
        assert buffer.dropped == 6
        assert len(buffer) == 10

    def test_reader_inside_window_replays_losslessly(self):
        buffer = StreamBuffer(maxlen=4)
        for i in range(10):
            buffer.append({"event": "point", "i": i})
        events, cursor, _ = buffer.read_from(8)
        assert [event["i"] for event in events] == [8, 9]
        assert cursor == 10

    def test_maxlen_validated(self):
        with pytest.raises(ValueError):
            StreamBuffer(maxlen=0)


class TestClientResilience:
    def test_wait_backs_off_exponentially(self, monkeypatch):
        import repro.serve.client as client_module

        class _FakeTime:
            def __init__(self):
                self.now = 0.0
                self.sleeps = []

            def monotonic(self):
                return self.now

            def sleep(self, seconds):
                self.sleeps.append(seconds)
                self.now += seconds

        fake_time = _FakeTime()
        monkeypatch.setattr(client_module, "time", fake_time)
        client = ServeClient(port=1)
        polls = iter([{"state": "running"}] * 6 + [{"state": "done"}])
        monkeypatch.setattr(client, "job", lambda job_id: next(polls))
        assert client.wait("job-000001", timeout=600.0,
                           poll_s=0.05)["state"] == "done"
        assert fake_time.sleeps == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]

    def test_stream_reconnects_at_the_cursor(self, monkeypatch):
        client = ServeClient(port=1, stream_backoff_s=0.0)
        cursors = []

        def fake_stream_once(job_id, cursor=0):
            cursors.append(cursor)
            if len(cursors) == 1:
                yield {"event": "point", "i": 0}
                yield {"event": "truncated", "dropped": 3}
                yield {"event": "point", "i": 1}
                raise ConnectionResetError("mid-stream drop")
            yield {"event": "point", "i": 2}
            yield {"event": "done"}

        monkeypatch.setattr(client, "_stream_once", fake_stream_once)
        events = list(client.stream("job-000001"))
        # The truncation marker never advances the resume cursor.
        assert cursors == [0, 2]
        assert [event["i"] for event in events
                if event.get("event") == "point"] == [0, 1, 2]
        assert events[-1] == {"event": "done"}

    def test_exhausted_budget_raises_typed_connection_lost(
            self, monkeypatch):
        client = ServeClient(port=1, stream_reconnects=1,
                             stream_backoff_s=0.0)
        attempts = []

        def always_drops(job_id, cursor=0):
            attempts.append(cursor)
            raise ConnectionResetError("gone")
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(client, "_stream_once", always_drops)
        with pytest.raises(ServeError) as excinfo:
            list(client.stream("job-000001"))
        assert excinfo.value.error_type == "ConnectionLost"
        # A budget of 1 reconnect = 2 connection attempts in total.
        assert len(attempts) == 2

    def test_reconnect_budget_resets_on_progress(self, monkeypatch):
        # Three separate drops against a budget of one reconnect: fine,
        # because every reconnection delivers an event before dying —
        # only *consecutive* fruitless drops exhaust the budget.
        client = ServeClient(port=1, stream_reconnects=1,
                             stream_backoff_s=0.0)
        calls = []

        def flaky_stream(job_id, cursor=0):
            calls.append(cursor)
            if len(calls) <= 3:
                yield {"event": "point", "i": cursor}
                raise ConnectionResetError("flaky link")
            yield {"event": "done"}

        monkeypatch.setattr(client, "_stream_once", flaky_stream)
        events = list(client.stream("job-000001"))
        assert calls == [0, 1, 2, 3]
        assert events[-1] == {"event": "done"}

    def test_stream_backoff_is_capped_exponential(self, monkeypatch):
        import repro.serve.client as client_module

        class _FakeTime:
            def __init__(self):
                self.sleeps = []

            def sleep(self, seconds):
                self.sleeps.append(seconds)

        fake_time = _FakeTime()
        monkeypatch.setattr(client_module, "time", fake_time)
        client = ServeClient(port=1, stream_reconnects=4,
                             stream_backoff_s=0.05,
                             stream_backoff_max_s=0.1)

        def always_drops(job_id, cursor=0):
            raise ConnectionResetError("gone")
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(client, "_stream_once", always_drops)
        with pytest.raises(ServeError):
            list(client.stream("job-000001"))
        assert fake_time.sleeps == [0.05, 0.1, 0.1, 0.1]


def _run_spec(frame_rate):
    return {"design": {"usecase": "fig5"},
            "options": {"frame_rate": float(frame_rate)}}


def _explore_spec(rates, name="recover-sweep"):
    return {
        "schema": "repro.explore-spec/1",
        "name": name,
        "usecase": "fig5",
        "space": {"name": "options.frame_rate",
                  "values": [float(rate) for rate in rates]},
        "objectives": ["energy_per_frame"],
    }


def _boot_daemon(tmp_path, journal_dir, cache_dir, ready_name):
    """A journaled ``repro serve`` subprocess; returns (process, client)."""
    ready = tmp_path / ready_name
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop(FAULTS_ENV, None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--ready-file", str(ready),
         "--journal", str(journal_dir), "--cache-dir", str(cache_dir)],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 30.0
    while not ready.exists():
        assert process.poll() is None, process.communicate()[1]
        assert time.monotonic() < deadline, "ready file never came"
        time.sleep(0.05)
    address = json.loads(ready.read_text())
    return process, ServeClient.from_url(address["url"], timeout=30.0)


@contextlib.contextmanager
def _daemon(tmp_path, journal_dir, cache_dir, ready_name):
    process, client = _boot_daemon(tmp_path, journal_dir, cache_dir,
                                   ready_name)
    try:
        yield client
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30.0)


class TestRestartRecovery:
    def test_background_server_restores_terminal_jobs(self, tmp_path):
        journal_dir = tmp_path / "journal"
        with BackgroundServer(workers=1,
                              journal_dir=str(journal_dir)) as server:
            client = server.client()
            job = client.submit(_run_spec(50.0))
            assert client.wait(job["id"])["state"] == "done"
            first = client.result(job["id"])
            stats = client.stats()
            assert stats["journal"]["appends"] >= 2
            # A fresh journal recovers nothing (but still reports so).
            assert stats["journal"]["recovery"] == {
                "restored": 0, "requeued": 0, "unrecoverable": 0}

        with BackgroundServer(workers=1,
                              journal_dir=str(journal_dir)) as server:
            client = server.client()
            stats = client.stats()
            assert stats["journal"]["recovery"] == {
                "restored": 1, "requeued": 0, "unrecoverable": 0}
            # Served verbatim from the journal, no re-run needed.
            assert client.result(job["id"]) == first
            # The id counter resumed past the journaled history.
            fresh = client.submit(_run_spec(60.0))
            assert fresh["id"] == "job-000002"
            assert client.wait(fresh["id"])["state"] == "done"

    def test_sigkill_and_restart_recovers_every_job(self, tmp_path):
        """The acceptance scenario: SIGKILL the daemon mid-run, restart
        on the same journal, and every job reaches a terminal state
        with bit-identical results."""
        journal_dir = tmp_path / "journal"
        cache_dir = tmp_path / "cache"
        first_doc, interrupted_id = self._life_one(
            tmp_path, journal_dir, cache_dir)

        # Life 2: same journal, same cache.
        with _daemon(tmp_path, journal_dir, cache_dir,
                     "ready2.json") as client:
            stats = client.stats()
            recovery = stats["journal"]["recovery"]
            assert recovery["restored"] == 1
            assert recovery["requeued"] == 1
            assert recovery["unrecoverable"] == 0
            # The finished job's document survived the kill verbatim.
            assert client.result("job-000001") == first_doc
            # The interrupted job re-ran under its original id...
            done = client.wait(interrupted_id, timeout=120.0)
            assert done["state"] == "done"
            recovered = client.result(interrupted_id)["result"]
            # ...to a bit-identical result: a fresh submission of the
            # same spec produces byte-equal JSON.
            fresh = client.submit(_explore_spec([80.0, 95.0, 110.0]))
            assert client.wait(fresh["id"],
                               timeout=120.0)["state"] == "done"
            reference = client.result(fresh["id"])["result"]
            assert json.dumps(recovered, sort_keys=True) \
                == json.dumps(reference, sort_keys=True)

    def _life_one(self, tmp_path, journal_dir, cache_dir):
        process, client = _boot_daemon(tmp_path, journal_dir, cache_dir,
                                       "ready1.json")
        try:
            job = client.submit(_run_spec(50.0))
            assert client.wait(job["id"], timeout=120.0)["state"] == "done"
            first_doc = client.result(job["id"])
            interrupted = client.submit(
                _explore_spec([80.0, 95.0, 110.0]))
            # No graceful anything: the journal is the only survivor.
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30.0)
        return first_doc, interrupted["id"]
