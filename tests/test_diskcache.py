"""Tests for the persistent (disk) tier of the simulator result cache."""

import json
import threading

import pytest

from repro.api import SimOptions, Simulator
from repro.api.diskcache import (
    DISK_CACHE_SCHEMA,
    DiskResultCache,
    default_cache_dir,
)
from repro.api.result import SimResult
from repro.exceptions import SerializationError, TimingError
from repro.usecases import UseCaseConfig, build_rhythmic
from repro.usecases.fig5 import build_fig5_design

#: An FPS no digital pipeline in this repo can satisfy.
_IMPOSSIBLE_FPS = 1e7


def _entry_files(cache):
    return sorted(cache.directory.glob("*.json"))


class TestDiskCacheRoundTrip:
    def test_round_trip_preserves_the_report(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        design = build_fig5_design()
        result = Simulator(cache=False).run(design)
        assert cache.put(design.content_hash, result.options, result)
        loaded = cache.get(design.content_hash, result.options)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert loaded.report.total_energy == result.report.total_energy

    def test_failures_round_trip_as_the_same_type(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        design = build_fig5_design()
        options = SimOptions(frame_rate=_IMPOSSIBLE_FPS)
        result = Simulator(cache=False).run(design, options)
        assert not result.ok
        cache.put(design.content_hash, options, result)
        loaded = cache.get(design.content_hash, options)
        assert loaded.error_type == "TimingError"
        with pytest.raises(TimingError):
            loaded.unwrap()

    def test_options_are_part_of_the_key(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        design = build_fig5_design()
        result = Simulator(cache=False).run(design)
        cache.put(design.content_hash, result.options, result)
        assert cache.get(design.content_hash,
                         SimOptions(frame_rate=60.0)) is None

    def test_unknown_error_type_degrades_to_camjerror(self, tmp_path):
        """A persisted failure type later renamed still unwraps."""
        from repro.exceptions import CamJError

        payload = Simulator(cache=False).run(
            build_fig5_design(), SimOptions(frame_rate=_IMPOSSIBLE_FPS)
        ).to_dict()
        payload["error"]["type"] = "ErrorFromTheFuture"
        loaded = SimResult.from_dict(payload)
        with pytest.raises(CamJError):
            loaded.unwrap()

    def test_result_payload_must_pick_report_or_error(self):
        payload = Simulator(cache=False).run(build_fig5_design()).to_dict()
        payload["error"] = {"type": "TimingError", "message": "both set"}
        with pytest.raises(SerializationError):
            SimResult.from_dict(payload)
        payload["report"] = None
        payload["error"] = None
        with pytest.raises(SerializationError):
            SimResult.from_dict(payload)


class TestDiskCacheCorruption:
    def _primed(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        design = build_fig5_design()
        result = Simulator(cache=False).run(design)
        cache.put(design.content_hash, result.options, result)
        return cache, design, result

    def test_version_mismatch_rejected(self, tmp_path):
        cache, design, result = self._primed(tmp_path)
        path = cache.entry_path(design.content_hash, result.options)
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.diskcache/99"
        path.write_text(json.dumps(payload))
        assert cache.get(design.content_hash, result.options) is None
        # Foreign-schema files are rejected but not deleted.
        assert path.exists()

    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache, design, result = self._primed(tmp_path)
        path = cache.entry_path(design.content_hash, result.options)
        path.write_text(path.read_text()[:40])  # simulate a torn write
        assert cache.get(design.content_hash, result.options) is None
        assert not path.exists()  # corrupt entries are swept

    def test_garbage_json_entry_is_a_miss(self, tmp_path):
        cache, design, result = self._primed(tmp_path)
        path = cache.entry_path(design.content_hash, result.options)
        path.write_text(json.dumps({"schema": DISK_CACHE_SCHEMA,
                                    "result": {"nonsense": True}}))
        assert cache.get(design.content_hash, result.options) is None
        assert not path.exists()

    def test_miss_counters(self, tmp_path):
        cache, design, result = self._primed(tmp_path)
        cache.get(design.content_hash, SimOptions(frame_rate=99.0))
        assert cache.info().misses == 1
        cache.get(design.content_hash, result.options)
        assert cache.info().hits == 1


class TestDiskCacheEviction:
    def test_lru_eviction_order(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        design = build_fig5_design()
        simulator = Simulator(cache=False)
        rates = [15.0, 30.0, 60.0, 120.0]
        paths = {}
        for rate in rates:
            options = SimOptions(frame_rate=rate)
            result = simulator.run(design, options)
            cache.put(design.content_hash, options, result)
            path = cache.entry_path(design.content_hash, options)
            paths[rate] = path
        # Establish an unambiguous recency order, oldest first, then
        # touch 15.0 so it becomes the most recently used entry.
        for index, rate in enumerate(rates + [15.0]):
            import os
            os.utime(paths[rate], (1000.0 + index, 1000.0 + index))

        entry_bytes = paths[15.0].stat().st_size
        # Bound the cache so only ~2 entries fit, then trigger eviction.
        cache.max_bytes = 2 * entry_bytes + 1
        cache._evict_over_bound()

        survivors = {rate for rate, path in paths.items() if path.exists()}
        assert 15.0 in survivors  # most recently used survives
        assert 30.0 not in survivors and 60.0 not in survivors  # oldest go
        assert cache.info().evictions >= 2

    def test_put_triggers_eviction(self, tmp_path):
        design = build_fig5_design()
        simulator = Simulator(cache=False)
        result = simulator.run(design)
        size = len(json.dumps({"schema": DISK_CACHE_SCHEMA,
                               "design_hash": design.content_hash,
                               "result": result.to_dict()},
                              sort_keys=True)) + 1
        cache = DiskResultCache(tmp_path, max_bytes=2 * size + 2)
        for rate in (15.0, 30.0, 60.0, 120.0):
            options = SimOptions(frame_rate=rate)
            cache.put(design.content_hash, options,
                      simulator.run(design, options))
        info = cache.info()
        assert info.entries <= 2
        assert info.total_bytes <= cache.max_bytes
        assert info.evictions >= 2

    def test_max_bytes_validated(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            DiskResultCache(tmp_path, max_bytes=0)


class TestSimulatorDiskTier:
    def test_new_session_starts_warm_from_disk(self, tmp_path):
        design = build_fig5_design()
        first = Simulator(cache_dir=tmp_path)
        cold = first.run(design)
        assert not cold.cached

        second = Simulator(cache_dir=tmp_path)
        warm = second.run(build_fig5_design())
        assert warm.cached
        assert warm.report.to_dict() == cold.report.to_dict()
        info = second.cache_info()
        assert info.hits == 1 and info.disk_hits == 1
        assert info.disk_entries == 1 and info.disk_bytes > 0

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        design = build_fig5_design()
        Simulator(cache_dir=tmp_path).run(design)
        session = Simulator(cache_dir=tmp_path)
        session.run(build_fig5_design())
        session.run(build_fig5_design())
        info = session.cache_info()
        assert info.hits == 2
        assert info.disk_hits == 1  # second hit came from memory

    def test_run_many_served_from_disk_without_a_pool(self, tmp_path):
        designs = [build_fig5_design(),
                   build_rhythmic(UseCaseConfig("2D-In", 65))]
        with Simulator(cache_dir=tmp_path) as cold:
            assert all(r.ok for r in cold.run_many(designs))
        with Simulator(cache_dir=tmp_path) as warm:
            results = warm.run_many(designs)
            assert all(r.cached for r in results)
            stats = warm.last_batch_stats
            assert stats.cache_hits == len(designs)
            assert stats.workers_used == 0

    def test_cache_false_disables_the_disk_tier(self, tmp_path):
        session = Simulator(cache=False, cache_dir=tmp_path)
        session.run(build_fig5_design())
        assert _entry_files(DiskResultCache(tmp_path)) == []

    def test_env_var_enables_the_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)
        Simulator().run(build_fig5_design())
        assert len(_entry_files(DiskResultCache(tmp_path))) == 1
        # Explicit None opts out even when the variable is set.
        assert Simulator(cache_dir=None)._disk_cache is None

    def test_env_var_unset_means_no_disk_tier(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() is None
        assert Simulator()._disk_cache is None

    def test_failures_persist_across_sessions(self, tmp_path):
        options = SimOptions(frame_rate=_IMPOSSIBLE_FPS)
        Simulator(cache_dir=tmp_path).run(build_fig5_design(), options)
        warm = Simulator(cache_dir=tmp_path).run(build_fig5_design(),
                                                 options)
        assert warm.cached and warm.error_type == "TimingError"

    def test_clear_cache_disk_flag(self, tmp_path):
        session = Simulator(cache_dir=tmp_path)
        session.run(build_fig5_design())
        session.clear_cache()  # memory only
        assert session.cache_info().disk_entries == 1
        session.clear_cache(disk=True)
        assert session.cache_info().disk_entries == 0


class TestForeignFilesAreSafe:
    def test_clear_and_eviction_only_touch_entry_files(self, tmp_path):
        """A shared directory's other JSON files are never deleted."""
        foreign = tmp_path / "BENCH_results.json"
        foreign.write_text('{"mine": true}')
        nested_name = tmp_path / "notes.json"
        nested_name.write_text("not a cache entry")
        cache = DiskResultCache(tmp_path, max_bytes=1)
        design = build_fig5_design()
        simulator = Simulator(cache=False)
        for rate in (15.0, 30.0):
            options = SimOptions(frame_rate=rate)
            cache.put(design.content_hash, options,
                      simulator.run(design, options))  # forces eviction
        assert cache.clear() >= 0
        assert foreign.exists() and nested_name.exists()
        assert cache.info().entries == 0


class TestUnusableDirectories:
    def test_env_cache_dir_failure_degrades_to_memory_only(
            self, tmp_path, monkeypatch):
        """An ambient REPRO_CACHE_DIR must never break a session."""
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("file where a directory should be")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "cache"))
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_DIR"):
            session = Simulator()
        assert session._disk_cache is None
        assert session.run(build_fig5_design()).ok  # memory tier works

    def test_explicit_cache_dir_failure_is_a_typed_error(self, tmp_path):
        from repro.exceptions import ConfigurationError

        blocker = tmp_path / "not-a-directory"
        blocker.write_text("file where a directory should be")
        with pytest.raises(ConfigurationError, match="cache_dir"):
            Simulator(cache_dir=blocker / "cache")


class TestColdBatchDiskProbes:
    def test_disk_probed_once_per_unique_cold_key(self, tmp_path):
        designs = [build_fig5_design(),
                   build_rhythmic(UseCaseConfig("2D-In", 65))]
        with Simulator(cache_dir=tmp_path) as session:
            assert all(r.ok for r in session.run_many(designs))
            info = session.cache_info()
        assert info.disk_misses == len(designs)  # no double probe


class TestConcurrentWriters:
    def test_two_sessions_share_one_directory(self, tmp_path):
        """Concurrent sessions writing the same keys never corrupt them."""
        designs = [build_fig5_design(),
                   build_rhythmic(UseCaseConfig("2D-In", 65)),
                   build_rhythmic(UseCaseConfig("2D-Off", 65))]
        items = [(design, SimOptions(frame_rate=rate))
                 for design in designs for rate in (15.0, 30.0, 60.0)]
        sessions = [Simulator(cache_dir=tmp_path) for _ in range(2)]
        failures = []

        def body(session):
            try:
                results = session.run_many(items)
                assert all(result.ok for result in results)
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=body, args=(session,))
                   for session in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for session in sessions:
            session.close()
        assert not failures
        cache = DiskResultCache(tmp_path)
        assert len(_entry_files(cache)) == len(items)
        # Every persisted entry loads back cleanly in a third session.
        reader = Simulator(cache_dir=tmp_path)
        results = reader.run_many(items)
        assert all(result.cached for result in results)
        assert reader.last_batch_stats.workers_used == 0


class TestCacheCli:
    def _prime(self, directory):
        Simulator(cache_dir=directory).run(build_fig5_design())

    def test_info_and_clear(self, tmp_path, capsys):
        from repro.__main__ import main

        self._prime(tmp_path)
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries          1" in out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        assert "entries          0" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        self._prime(tmp_path)
        assert main(["--json", "cache", "info", "--dir",
                     str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["directory"] == str(tmp_path)
        assert main(["--json", "cache", "clear", "--dir",
                     str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 1

    def test_env_var_default_directory(self, tmp_path, monkeypatch,
                                       capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._prime(tmp_path)
        assert main(["cache", "info"]) == 0
        assert "entries          1" in capsys.readouterr().out

    def test_no_directory_fails_cleanly(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "info"]) == 1
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_missing_directory_is_not_created(self, tmp_path, capsys):
        from repro.__main__ import main

        missing = tmp_path / "typo" / "cache"
        assert main(["cache", "info", "--dir", str(missing)]) == 1
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()
