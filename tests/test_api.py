"""Tests for the first-class session API (Design / Simulator / specs)."""

import json

import pytest

from repro import simulate, units
from repro.api import (
    Design,
    SimOptions,
    Simulator,
    build_usecase,
    design_from_spec,
    load_scenario,
    run_design,
    scenario_from_spec,
)
from repro.exceptions import (
    ConfigurationError,
    MappingError,
    SerializationError,
    TimingError,
)
from repro.sw.stage import ProcessStage
from repro.usecases import UseCaseConfig, build_edgaze, build_rhythmic
from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_design,
    build_fig5_stages,
    build_fig5_system,
)

#: An FPS no digital pipeline in this repo can satisfy.
_IMPOSSIBLE_FPS = 1e7


class _CustomStage(ProcessStage):
    """A user-defined stage type the serializer doesn't know."""


def _unserializable_design() -> Design:
    """A working Fig. 5 variant whose custom stage defeats to_dict()."""
    stages = build_fig5_stages()
    custom = _CustomStage("EdgeDetection", input_size=(16, 16, 1),
                          kernel=(3, 3, 1), stride=(1, 1, 1),
                          padding="same")
    custom.set_input_stage(stages[1])
    return Design(stages[:2] + [custom], build_fig5_system(),
                  dict(FIG5_MAPPING))


class TestDesign:
    def test_bundles_the_three_parts(self):
        design = build_fig5_design()
        assert design.name == "Fig5"
        assert len(design.stages) == 3
        assert design.system.name == "Fig5"
        assert design.mapping.assignments == FIG5_MAPPING

    def test_unpacks_like_the_legacy_triple(self):
        stages, system, mapping = build_fig5_design()
        assert stages[0].name == "Input"
        assert system.find_unit("EdgeUnit") is not None
        assert mapping == FIG5_MAPPING
        assert len(build_fig5_design()) == 3
        assert build_fig5_design()[1].name == "Fig5"

    def test_frozen(self):
        design = build_fig5_design()
        with pytest.raises(AttributeError):
            design.system = None
        with pytest.raises(AttributeError):
            del design.name

    def test_invalid_mapping_fails_at_construction(self):
        with pytest.raises(MappingError):
            Design(build_fig5_stages(), build_fig5_system(),
                   {"Input": "PixelArray"})  # incomplete mapping

    def test_custom_stage_types_hash_by_identity(self):
        """Unserializable designs still simulate, compare, and hash."""
        design, twin = _unserializable_design(), _unserializable_design()
        with pytest.raises(SerializationError):
            design.to_dict()
        assert design == design
        assert design != twin  # identity fallback, not content
        assert len({design, twin}) == 2
        result = Simulator().run(design)
        assert result.ok and result.design_hash is None
        assert not Simulator().run(design).cached


class TestDesignSerialization:
    def test_json_round_trip_equality(self):
        design = build_fig5_design()
        clone = Design.from_json(design.to_json())
        assert clone == design
        assert clone.content_hash == design.content_hash

    def test_round_trip_preserves_total_energy_exactly(self):
        """Acceptance: round-tripped Fig. 5 matches direct simulate()."""
        design = build_fig5_design()
        clone = Design.from_dict(json.loads(json.dumps(design.to_dict())))
        direct = simulate(build_fig5_stages(), build_fig5_system(),
                          dict(FIG5_MAPPING), frame_rate=30.0)
        replayed = run_design(clone, frame_rate=30.0).unwrap()
        assert replayed.total_energy == direct.total_energy
        assert replayed.digital_latency == direct.digital_latency

    @pytest.mark.parametrize("builder", [
        lambda: build_rhythmic(UseCaseConfig("2D-In", 65)),
        lambda: build_edgaze(UseCaseConfig("3D-In-STT", 65)),
        lambda: build_usecase("edgaze_mixed", cis_node=65),
        lambda: build_usecase("threelayer"),
    ], ids=["rhythmic", "edgaze-stt", "edgaze-mixed", "threelayer"])
    def test_every_usecase_round_trips(self, builder):
        design = builder()
        clone = Design.from_json(design.to_json())
        assert clone.content_hash == design.content_hash
        original = run_design(design).unwrap()
        replayed = run_design(clone).unwrap()
        assert replayed.total_energy == original.total_energy

    def test_content_hash_stable_across_independent_builds(self):
        assert build_fig5_design().content_hash \
            == build_fig5_design().content_hash

    def test_content_hash_sensitive_to_parameters(self):
        base = build_rhythmic(UseCaseConfig("2D-In", 65))
        other = build_rhythmic(UseCaseConfig("2D-In", 130))
        assert base.content_hash != other.content_hash
        assert base != other

    def test_unknown_schema_rejected(self):
        payload = build_fig5_design().to_dict()
        payload["schema"] = "repro.design/99"
        with pytest.raises(SerializationError):
            Design.from_dict(payload)

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "fig5.json"
        design = build_fig5_design()
        design.save(path)
        assert Design.load(path) == design


class TestSimOptions:
    def test_defaults(self):
        options = SimOptions()
        assert options.frame_rate == 30.0
        assert not options.cycle_accurate

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimOptions(frame_rate=0)
        with pytest.raises(ConfigurationError):
            SimOptions(exposure_slots=0)

    def test_round_trip(self):
        options = SimOptions(frame_rate=60.0, cycle_accurate=True)
        assert SimOptions.from_dict(options.to_dict()) == options

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError):
            SimOptions.from_dict({"fps": 30})

    def test_wrong_types_rejected(self):
        """Spec files hand over raw JSON; strings must not slip through."""
        with pytest.raises(ConfigurationError):
            SimOptions(frame_rate="60")
        with pytest.raises(ConfigurationError):
            SimOptions(exposure_slots=1.5)
        with pytest.raises(ConfigurationError):
            SimOptions(cycle_accurate="yes")

    def test_usecase_bad_params_raise_framework_error(self):
        with pytest.raises(ConfigurationError):
            build_usecase("fig5", fps=60)

    def test_replace(self):
        assert SimOptions().replace(frame_rate=120.0).frame_rate == 120.0


class TestSimulatorRun:
    def test_success_result(self):
        result = Simulator().run(build_fig5_design())
        assert result.ok
        assert result.error is None
        assert result.design_hash == build_fig5_design().content_hash
        assert result.report.total_energy == pytest.approx(30.9 * units.nJ,
                                                           rel=0.05)

    def test_timing_failure_captured_not_raised(self):
        """Acceptance: failures come back typed, not as exceptions."""
        simulator = Simulator(SimOptions(frame_rate=_IMPOSSIBLE_FPS))
        result = simulator.run(build_fig5_design())
        assert not result.ok
        assert result.report is None
        assert result.error_type == "TimingError"
        assert "frame budget" in result.failure
        with pytest.raises(TimingError):
            result.unwrap()

    def test_rejects_legacy_triple(self):
        with pytest.raises(ConfigurationError):
            Simulator().run((build_fig5_stages(), build_fig5_system(),
                             dict(FIG5_MAPPING)))

    def test_matches_legacy_simulate_wrapper(self):
        direct = simulate(*build_fig5_design(), frame_rate=45.0)
        session = Simulator(SimOptions(frame_rate=45.0)) \
            .run(build_fig5_design()).unwrap()
        assert session.total_energy == direct.total_energy


class TestSimulatorCache:
    def test_second_run_is_a_cache_hit(self):
        simulator = Simulator()
        first = simulator.run(build_fig5_design())
        second = simulator.run(build_fig5_design())  # independent build
        assert not first.cached
        assert second.cached
        assert second.report.total_energy == first.report.total_energy
        info = simulator.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_options_are_part_of_the_key(self):
        simulator = Simulator()
        simulator.run(build_fig5_design())
        other = simulator.run(build_fig5_design(),
                              SimOptions(frame_rate=60.0))
        assert not other.cached
        assert simulator.cache_info().misses == 2

    def test_cache_disabled(self):
        simulator = Simulator(cache=False)
        simulator.run(build_fig5_design())
        repeat = simulator.run(build_fig5_design())
        assert not repeat.cached
        assert simulator.cache_info().size == 0

    def test_clear_cache(self):
        simulator = Simulator()
        simulator.run(build_fig5_design())
        simulator.clear_cache()
        assert simulator.cache_info().size == 0
        assert not simulator.run(build_fig5_design()).cached

    def test_failures_are_cached_too(self):
        simulator = Simulator(SimOptions(frame_rate=_IMPOSSIBLE_FPS))
        simulator.run(build_fig5_design())
        repeat = simulator.run(build_fig5_design())
        assert repeat.cached and repeat.error_type == "TimingError"


class TestRunMany:
    def _grid(self):
        return [build_rhythmic(UseCaseConfig(placement, node))
                for node in (130, 65)
                for placement in ("2D-In", "2D-Off", "3D-In")]

    def test_batch_of_eight_in_input_order(self):
        """Acceptance: >= 8 designs, one result each, input order."""
        designs = self._grid() + [build_fig5_design(),
                                  build_usecase("threelayer")]
        assert len(designs) >= 8
        simulator = Simulator()
        results = simulator.run_many(designs)
        assert [r.design_name for r in results] \
            == [d.name for d in designs]
        assert all(r.ok for r in results)
        stats = simulator.last_batch_stats
        assert stats.total == len(designs)
        assert stats.max_workers >= 2

    def test_batch_spreads_across_multiple_workers(self, monkeypatch):
        """Acceptance: a batch occupies several pool workers at once.

        The repo's designs simulate in microseconds — far faster than a
        pool thread spins up — so a GIL-releasing delay is injected to
        observe the scheduling property deterministically.
        """
        import time as time_module

        import repro.api.simulator as simulator_module
        real_engine = simulator_module._simulate_graph

        def slow_engine(*args, **kwargs):
            time_module.sleep(0.05)
            return real_engine(*args, **kwargs)

        monkeypatch.setattr(simulator_module, "_simulate_graph",
                            slow_engine)
        simulator = Simulator(max_workers=4)
        results = simulator.run_many(self._grid() + [build_fig5_design(),
                                                     build_usecase(
                                                         "threelayer")])
        assert all(r.ok for r in results)
        assert simulator.last_batch_stats.workers_used >= 2

    def test_duplicates_simulated_once(self):
        designs = self._grid()
        batch = designs + designs  # every scenario twice
        simulator = Simulator()
        results = simulator.run_many(batch)
        assert len(results) == len(batch)
        assert simulator.last_batch_stats.unique == len(designs)
        for first, second in zip(results[:len(designs)],
                                 results[len(designs):]):
            assert first.report.total_energy == second.report.total_energy

    def test_per_item_options_pairs(self):
        design = build_fig5_design()
        items = [(design, SimOptions(frame_rate=fps))
                 for fps in (15.0, 30.0, _IMPOSSIBLE_FPS)]
        results = Simulator().run_many(items)
        assert results[0].ok and results[1].ok
        assert results[2].error_type == "TimingError"
        assert [r.options.frame_rate for r in results] \
            == [15.0, 30.0, _IMPOSSIBLE_FPS]

    def test_empty_batch(self):
        assert Simulator().run_many([]) == []

    def test_malformed_item_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator().run_many([42])

    def test_unserializable_designs_still_fan_out(self):
        """Custom-typed designs go through the pool, just uncached."""
        simulator = Simulator()
        designs = [_unserializable_design() for _ in range(4)]
        results = simulator.run_many(designs)
        assert all(r.ok for r in results)
        assert all(r.design_hash is None for r in results)
        stats = simulator.last_batch_stats
        assert stats.unique == 4  # no dedup without a content hash
        assert stats.workers_used >= 1  # ran through the pool, not inline
        assert simulator.cache_info().size == 0

    def test_process_executor(self):
        """Designs ship to worker processes as serialized payloads."""
        designs = [build_fig5_design(),
                   build_rhythmic(UseCaseConfig("2D-In", 65))]
        simulator = Simulator(executor="process", max_workers=2)
        results = simulator.run_many(designs)
        assert [r.design_name for r in results] == [d.name for d in designs]
        assert all(r.ok for r in results)
        assert results[0].design_hash == designs[0].content_hash
        assert simulator.last_batch_stats.workers_used >= 1
        # Results entered the session cache: a repeat batch is all hits.
        repeat = simulator.run_many(designs)
        assert all(r.cached for r in repeat)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(executor="rocket")


class TestSessionPools:
    def _grid(self):
        return [build_rhythmic(UseCaseConfig(placement, node))
                for node in (130, 65)
                for placement in ("2D-In", "2D-Off", "3D-In")]

    def test_thread_pool_reused_across_batches(self):
        simulator = Simulator(cache=False)
        simulator.run_many(self._grid())
        first = simulator._thread_pool
        assert first is not None
        simulator.run_many(self._grid())
        assert simulator._thread_pool is first
        simulator.close()

    def test_pool_grows_for_wider_batches_and_never_shrinks(self):
        simulator = Simulator(cache=False)
        simulator.run_many(self._grid()[:2])
        narrow = simulator._thread_pool_width
        simulator.run_many([(design, SimOptions(frame_rate=float(rate)))
                            for design in self._grid()
                            for rate in (20, 40, 60)])
        grown = simulator._thread_pool_width
        assert grown >= narrow
        simulator.run_many(self._grid()[:2])
        assert simulator._thread_pool_width == grown  # no shrink
        assert simulator.last_batch_stats.max_workers == grown
        simulator.close()

    def test_close_is_idempotent_and_session_recovers(self):
        simulator = Simulator(cache=False)
        simulator.run_many(self._grid()[:3])
        simulator.close()
        assert simulator._thread_pool is None
        simulator.close()  # second close is a no-op
        # The session stays usable: pools are recreated lazily.
        results = simulator.run_many(self._grid()[:3])
        assert all(result.ok for result in results)
        assert simulator._thread_pool is not None
        simulator.close()

    def test_context_manager_closes_the_pools(self):
        with Simulator(cache=False) as simulator:
            assert all(r.ok for r in simulator.run_many(self._grid()[:3]))
            assert simulator._thread_pool is not None
        assert simulator._thread_pool is None

    def test_cached_batches_never_create_a_pool(self):
        simulator = Simulator()
        designs = self._grid()[:3]
        simulator.run_many(designs)
        simulator.close()
        assert all(r.cached for r in simulator.run_many(designs))
        assert simulator._thread_pool is None  # warm batch: no pool

    def test_broken_process_pool_is_healed_within_the_batch(self):
        """A dead worker is healed in place: the batch still completes."""
        import os as os_module

        from concurrent.futures import BrokenExecutor

        designs = [build_fig5_design()]
        with Simulator(cache=False, executor="process",
                       max_workers=1) as simulator:
            assert all(r.ok for r in simulator.run_many(designs))
            poisoned = simulator._process_pool
            # Kill the worker out from under the executor.
            with pytest.raises(BrokenExecutor):
                poisoned.submit(os_module._exit, 1).result()
            # The next batch inherits the corpse — and heals it: the
            # pool is rebuilt mid-batch and the jobs still complete.
            results = simulator.run_many(designs)
            assert all(r.ok for r in results)
            assert simulator.last_batch_stats.pool_rebuilds >= 1
            assert simulator._process_pool is not poisoned

    def test_process_pool_reused_across_batches(self):
        with Simulator(cache=False, executor="process",
                       max_workers=2) as simulator:
            designs = [build_fig5_design(),
                       build_rhythmic(UseCaseConfig("2D-In", 65))]
            assert all(r.ok for r in simulator.run_many(designs))
            first = simulator._process_pool
            assert first is not None
            assert all(r.ok for r in simulator.run_many(designs))
            assert simulator._process_pool is first
        assert simulator._process_pool is None


class TestBatchLocalHitCounts:
    def test_run_many_hits_are_batch_local(self):
        """Stats must not read deltas off the shared session counters."""
        simulator = Simulator()
        design = build_fig5_design()
        simulator.run(design)
        # A concurrent run() bumping session counters mid-batch must not
        # leak into the batch stats; simulate the race directly.
        simulator._cache_hits += 100
        results = simulator.run_many([design, design, design])
        assert all(result.cached for result in results)
        # One unique warm key: one batch-local hit, dedup covers the rest.
        assert simulator.last_batch_stats.cache_hits == 1

    def test_warm_batch_counts_every_unique_key(self):
        simulator = Simulator()
        designs = [build_fig5_design(),
                   build_rhythmic(UseCaseConfig("2D-In", 65))]
        simulator.run_many(designs)
        simulator.run_many(designs)
        assert simulator.last_batch_stats.cache_hits == len(designs)


class TestSpecs:
    def test_usecase_reference(self):
        design = design_from_spec({"usecase": "edgaze",
                                   "params": {"placement": "2D-In",
                                              "cis_node": 65}})
        assert design == build_edgaze(UseCaseConfig("2D-In", 65))

    def test_unknown_usecase(self):
        with pytest.raises(ConfigurationError):
            design_from_spec({"usecase": "warp-drive"})

    def test_structural_payload(self):
        design = build_fig5_design()
        assert design_from_spec(design.to_dict()) == design

    def test_scenario_with_options(self):
        payload = {"design": build_fig5_design().to_dict(),
                   "options": {"frame_rate": 60.0}}
        design, options = scenario_from_spec(payload)
        assert design == build_fig5_design()
        assert options.frame_rate == 60.0

    def test_bare_design_payload_gets_default_options(self):
        design, options = scenario_from_spec(build_fig5_design().to_dict())
        assert design == build_fig5_design()
        assert options == SimOptions()

    def test_load_scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({
            "design": {"usecase": "fig5"},
            "options": {"frame_rate": 90.0},
        }))
        design, options = load_scenario(path)
        assert design == build_fig5_design()
        assert options.frame_rate == 90.0

    def test_garbage_spec_rejected(self):
        with pytest.raises(SerializationError):
            design_from_spec({"nonsense": True})

    def test_non_object_params_rejected(self):
        with pytest.raises(SerializationError):
            design_from_spec({"usecase": "fig5", "params": [1, 2]})

    def test_non_object_options_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_spec({"design": {"usecase": "fig5"},
                                "options": 5})
        with pytest.raises(ConfigurationError):
            scenario_from_spec({"design": {"usecase": "fig5"},
                                "options": None})


class TestSessionConcurrency:
    """The shared-session guarantees the serve daemon builds on."""

    def _grid(self):
        return [build_rhythmic(UseCaseConfig(placement, node))
                for node in (130, 65)
                for placement in ("2D-In", "2D-Off", "3D-In")]

    def test_concurrent_batches_share_one_pool(self, monkeypatch):
        """Overlapping run_many calls must not race pool creation."""
        import threading

        import repro.api.simulator as simulator_module

        created = []
        real_pool = simulator_module.ThreadPoolExecutor

        class CountingPool(real_pool):
            def __init__(self, *args, **kwargs):
                created.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(simulator_module, "ThreadPoolExecutor",
                            CountingPool)
        simulator = Simulator(cache=False)
        designs = self._grid()
        barrier = threading.Barrier(4)
        errors = []

        def batch():
            barrier.wait()
            try:
                results = simulator.run_many(designs)
                assert all(result.ok for result in results)
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=batch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        # Same batch width from every thread: exactly one pool, reused.
        assert len(created) == 1
        simulator.close()

    def test_concurrent_close_is_safe_and_idempotent(self):
        import threading

        simulator = Simulator(cache=False)
        simulator.run_many(self._grid()[:3])
        barrier = threading.Barrier(8)
        errors = []

        def close():
            barrier.wait()
            try:
                simulator.close()
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert simulator._thread_pool is None

    def test_terminal_close_blocks_batches_but_not_run(self):
        simulator = Simulator(cache=False)
        designs = self._grid()[:2]
        assert all(result.ok for result in simulator.run_many(designs))
        simulator.close(terminal=True)
        assert simulator.closed
        with pytest.raises(ConfigurationError):
            simulator.run_many(designs)  # pools must not resurrect
        # run() never touches a pool; it keeps working either way.
        assert simulator.run(build_fig5_design()).ok

    def test_terminal_close_still_serves_cached_batches(self):
        simulator = Simulator()
        designs = self._grid()[:3]
        simulator.run_many(designs)
        simulator.close(terminal=True)
        results = simulator.run_many(designs)  # warm: no pool needed
        assert all(result.cached for result in results)

    def test_non_terminal_close_keeps_session_usable(self):
        simulator = Simulator(cache=False)
        simulator.run_many(self._grid()[:2])
        simulator.close(cancel_pending=True)
        assert not simulator.closed
        assert all(result.ok
                   for result in simulator.run_many(self._grid()[:2]))
        simulator.close()

    def test_pool_info_tracks_lifecycle(self):
        simulator = Simulator(cache=False, max_workers=3)
        info = simulator.pool_info()
        assert info == {"executor": "thread", "max_workers": 3,
                        "thread_pool_width": 0, "process_pool_width": 0,
                        "terminal": False}
        simulator.run_many(self._grid()[:3])
        assert simulator.pool_info()["thread_pool_width"] == 3
        simulator.close(terminal=True)
        info = simulator.pool_info()
        assert info["thread_pool_width"] == 0
        assert info["terminal"] is True
