"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("validate", "fig5", "rhythmic", "edgaze", "mixed",
                        "threelayer", "survey"):
            args = parser.parse_args(
                [command] if command not in ("fig5", "threelayer")
                else [command])
            assert args.command == command

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_fps_option(self):
        args = build_parser().parse_args(["fig5", "--fps", "60"])
        assert args.fps == 60.0


class TestCommands:
    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Energy report" in out
        assert "bottlenecks" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out and "Pearson" in out

    def test_rhythmic(self, capsys):
        assert main(["rhythmic"]) == 0
        assert "2D-In (130nm)" in capsys.readouterr().out

    def test_edgaze(self, capsys):
        assert main(["edgaze"]) == 0
        assert "3D-In-STT" in capsys.readouterr().out

    def test_mixed(self, capsys):
        assert main(["mixed"]) == 0
        assert "saves" in capsys.readouterr().out

    def test_threelayer(self, capsys):
        assert main(["threelayer"]) == 0
        out = capsys.readouterr().out
        assert "per-layer energy" in out
        assert "dram" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "halving period" in out

    def test_fig5_custom_fps(self, capsys):
        assert main(["fig5", "--fps", "120"]) == 0
        assert "120" in capsys.readouterr().out


class TestChipCommand:
    def test_known_chip(self, capsys):
        assert main(["chip", "JSSC'21-II"]) == 0
        out = capsys.readouterr().out
        assert "51" in out and "pJ/px" in out

    def test_chip_with_breakdown_errors(self, capsys):
        assert main(["chip", "JSSC'19"]) == 0
        assert "per-component errors" in capsys.readouterr().out

    def test_unknown_chip_fails_cleanly(self, capsys):
        assert main(["chip", "ISSCC'99"]) == 1
        assert "known chips" in capsys.readouterr().err
