"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.usecases.fig5 import build_fig5_design


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("validate", "fig5", "rhythmic", "edgaze", "mixed",
                        "threelayer", "survey"):
            args = parser.parse_args(
                [command] if command not in ("fig5", "threelayer")
                else [command])
            assert args.command == command

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_fps_option(self):
        args = build_parser().parse_args(["fig5", "--fps", "60"])
        assert args.fps == 60.0


class TestCommands:
    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Energy report" in out
        assert "bottlenecks" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out and "Pearson" in out

    def test_rhythmic(self, capsys):
        assert main(["rhythmic"]) == 0
        assert "2D-In (130nm)" in capsys.readouterr().out

    def test_edgaze(self, capsys):
        assert main(["edgaze"]) == 0
        assert "3D-In-STT" in capsys.readouterr().out

    def test_mixed(self, capsys):
        assert main(["mixed"]) == 0
        assert "saves" in capsys.readouterr().out

    def test_threelayer(self, capsys):
        assert main(["threelayer"]) == 0
        out = capsys.readouterr().out
        assert "per-layer energy" in out
        assert "dram" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "halving period" in out

    def test_fig5_custom_fps(self, capsys):
        assert main(["fig5", "--fps", "120"]) == 0
        assert "120" in capsys.readouterr().out


class TestJsonFlag:
    def test_fig5_json(self, capsys):
        assert main(["fig5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "Fig5"
        assert payload["total_energy"] > 0

    def test_json_before_subcommand(self, capsys):
        assert main(["--json", "fig5"]) == 0
        assert json.loads(capsys.readouterr().out)["system"] == "Fig5"

    def test_rhythmic_json(self, capsys):
        assert main(["rhythmic", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 6
        assert {"label", "total_energy"} <= set(rows[0])

    def test_validate_json(self, capsys):
        assert main(["validate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pearson"] > 0.99
        assert len(payload["chips"]) == 9

    def test_survey_json(self, capsys):
        assert main(["survey", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fig3_node_halving_years"] > 0

    def test_usecases_json(self, capsys):
        assert main(["usecases", "--json"]) == 0
        assert "fig5" in json.loads(capsys.readouterr().out)


class TestRunCommand:
    def _write_spec(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_run_structural_spec(self, tmp_path, capsys):
        """Acceptance: a serialized scenario executes end to end."""
        spec = self._write_spec(tmp_path, {
            "design": build_fig5_design().to_dict(),
            "options": {"frame_rate": 60.0},
        })
        assert main(["run", spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert payload["options"]["frame_rate"] == 60.0
        assert payload["report"]["total_energy"] > 0
        assert payload["design_hash"] == build_fig5_design().content_hash

    def test_run_usecase_reference(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, {
            "design": {"usecase": "rhythmic",
                       "params": {"placement": "2D-In", "cis_node": 65}},
        })
        assert main(["run", spec]) == 0
        assert "Energy report" in capsys.readouterr().out

    def test_run_infeasible_scenario(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, {
            "design": {"usecase": "fig5"},
            "options": {"frame_rate": 1e7},
        })
        assert main(["run", spec]) == 1
        assert "TimingError" in capsys.readouterr().err

    def test_run_infeasible_scenario_json_exit_code(self, tmp_path, capsys):
        """--json still signals failure through the exit status."""
        spec = self._write_spec(tmp_path, {
            "design": {"usecase": "fig5"},
            "options": {"frame_rate": 1e7},
        })
        assert main(["run", spec, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert not payload["ok"]
        assert payload["error"]["type"] == "TimingError"

    def test_sweep_fractional_exposure_slots_rejected(self, tmp_path,
                                                      capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"design": {"usecase": "fig5"}}))
        assert main(["sweep", str(path), "--param", "exposure_slots",
                     "--values", "1,2.5"]) == 1
        assert "whole numbers" in capsys.readouterr().err

    def test_run_missing_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 1
        assert "cannot load spec" in capsys.readouterr().err

    def test_run_malformed_spec(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["run", str(path)]) == 1
        assert "cannot load spec" in capsys.readouterr().err

    def test_run_string_option_value_fails_cleanly(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, {
            "design": {"usecase": "fig5"},
            "options": {"frame_rate": "60"},
        })
        assert main(["run", spec]) == 1
        assert "cannot load spec" in capsys.readouterr().err

    def test_run_bad_usecase_params_fail_cleanly(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, {
            "design": {"usecase": "fig5", "params": {"fps": 60}},
        })
        assert main(["run", spec]) == 1
        err = capsys.readouterr().err
        assert "cannot load spec" in err and "fps" in err


class TestSweepCommand:
    def test_sweep_frame_rate(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"design": {"usecase": "fig5"}}))
        assert main(["sweep", str(path), "--values", "15,30,1e7",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["param"] == "frame_rate"
        assert [point["value"] for point in payload["points"]] \
            == [15.0, 30.0, 1e7]
        assert payload["points"][0]["ok"]
        assert not payload["points"][2]["ok"]

    def test_sweep_table_output(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"design": {"usecase": "fig5"}}))
        assert main(["sweep", str(path), "--values", "30,60"]) == 0
        out = capsys.readouterr().out
        assert "sweep of frame_rate" in out

    def test_sweep_bad_values(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"design": {"usecase": "fig5"}}))
        assert main(["sweep", str(path), "--values", "fast,slow"]) == 1
        assert "comma-separated numbers" in capsys.readouterr().err


class TestChipCommand:
    def test_known_chip(self, capsys):
        assert main(["chip", "JSSC'21-II"]) == 0
        out = capsys.readouterr().out
        assert "51" in out and "pJ/px" in out

    def test_chip_with_breakdown_errors(self, capsys):
        assert main(["chip", "JSSC'19"]) == 0
        assert "per-component errors" in capsys.readouterr().out

    def test_unknown_chip_fails_cleanly(self, capsys):
        assert main(["chip", "ISSCC'99"]) == 1
        assert "known chips" in capsys.readouterr().err
