"""Tests for energy-report serialization."""

import json

import pytest

from repro.energy.report import Category, EnergyEntry, EnergyReport
from repro.exceptions import ConfigurationError
from repro.usecases.fig5 import run_fig5


class TestRoundTrip:
    def test_fig5_round_trip(self):
        original = run_fig5()
        restored = EnergyReport.from_dict(original.to_dict())
        assert restored.system_name == original.system_name
        assert restored.total_energy == pytest.approx(
            original.total_energy)
        assert restored.by_category() == original.by_category()
        assert restored.by_stage() == original.by_stage()

    def test_json_serializable(self):
        payload = run_fig5().to_dict()
        text = json.dumps(payload)
        assert "PixelArray/BinningPixel" in text

    def test_entries_preserve_all_fields(self):
        report = EnergyReport(system_name="S", frame_rate=30,
                              frame_time=1 / 30, digital_latency=1e-6,
                              analog_stage_delay=1e-3)
        report.add(EnergyEntry("X", Category.SEN, "sensor", 1e-9,
                               stage="Input"))
        restored = EnergyReport.from_dict(report.to_dict())
        entry = restored.entries[0]
        assert entry.name == "X"
        assert entry.category is Category.SEN
        assert entry.layer == "sensor"
        assert entry.stage == "Input"

    def test_missing_key_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            EnergyReport.from_dict({"system": "S"})

    def test_unknown_category_rejected(self):
        payload = run_fig5().to_dict()
        payload["entries"][0]["category"] = "WARP-DRIVE"
        with pytest.raises(ConfigurationError, match="malformed"):
            EnergyReport.from_dict(payload)
