"""Tests for algorithm stages."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sw.stage import (
    Conv2DStage,
    DepthwiseConv2DStage,
    FullyConnectedStage,
    PixelInput,
    ProcessStage,
)


class TestPixelInput:
    def test_output_statistics(self):
        source = PixelInput((400, 640, 1), name="Input")
        assert source.output_pixels == 400 * 640
        assert source.output_bytes == 400 * 640  # 8-bit pixels
        assert source.total_ops == 400 * 640

    def test_higher_bit_depth(self):
        source = PixelInput((100, 100, 1), name="In", bits_per_pixel=12)
        assert source.output_bytes == pytest.approx(100 * 100 * 1.5)

    def test_cannot_have_producers(self):
        source = PixelInput((8, 8, 1))
        other = PixelInput((8, 8, 1), name="Other")
        with pytest.raises(ConfigurationError):
            source.set_input_stage(other)


class TestProcessStage:
    def test_derived_output_size(self):
        stage = ProcessStage("Bin", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
        assert stage.output_size == (16, 16, 1)

    def test_declared_output_size_checked(self):
        with pytest.raises(ConfigurationError, match="does not match"):
            ProcessStage("Bad", input_size=(32, 32, 1), kernel=(2, 2, 1),
                         stride=(2, 2, 1), output_size=(8, 8, 1))

    def test_total_ops_default_kernel_volume(self):
        stage = ProcessStage("Bin", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
        assert stage.total_ops == 16 * 16 * 4

    def test_ops_per_output_override(self):
        stage = ProcessStage("Cmp", input_size=(32, 32, 1),
                             kernel=(1, 1, 1), stride=(1, 1, 1),
                             ops_per_output=3.0)
        assert stage.total_ops == 32 * 32 * 3

    def test_same_padding(self):
        stage = ProcessStage("Edge", input_size=(16, 16, 1),
                             kernel=(3, 3, 1), stride=(1, 1, 1),
                             padding="same")
        assert stage.output_size == (16, 16, 1)

    def test_input_reads(self):
        stage = ProcessStage("Edge", input_size=(16, 16, 1),
                             kernel=(3, 3, 1), stride=(1, 1, 1),
                             padding="same")
        assert stage.input_reads == 16 * 16 * 9

    def test_output_compression(self):
        stage = ProcessStage("ROI", input_size=(16, 16, 1),
                             kernel=(1, 1, 1), stride=(1, 1, 1),
                             output_compression=0.5)
        assert stage.output_bytes == pytest.approx(16 * 16 * 0.5)

    def test_compression_bounds(self):
        with pytest.raises(ConfigurationError):
            ProcessStage("Bad", input_size=(8, 8, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1), output_compression=0.0)

    def test_dag_wiring(self):
        source = PixelInput((32, 32, 1))
        stage = ProcessStage("Bin", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
        stage.set_input_stage(source)
        assert stage.input_stages == [source]

    def test_self_loop_rejected(self):
        stage = ProcessStage("Bin", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
        with pytest.raises(ConfigurationError):
            stage.set_input_stage(stage)

    def test_duplicate_edge_rejected(self):
        source = PixelInput((32, 32, 1))
        stage = ProcessStage("Bin", input_size=(32, 32, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
        stage.set_input_stage(source)
        with pytest.raises(ConfigurationError):
            stage.set_input_stage(source)


class TestConv2D:
    def test_output_channels_follow_kernels(self):
        conv = Conv2DStage("C1", input_size=(32, 32, 3), num_kernels=16,
                           kernel_size=(3, 3))
        assert conv.output_size == (32, 32, 16)

    def test_mac_count(self):
        conv = Conv2DStage("C1", input_size=(32, 32, 3), num_kernels=16,
                           kernel_size=(3, 3))
        assert conv.num_macs == 32 * 32 * 16 * 3 * 3 * 3

    def test_strided_conv(self):
        conv = Conv2DStage("C1", input_size=(32, 32, 1), num_kernels=8,
                           kernel_size=(3, 3), stride=(2, 2, 1))
        assert conv.output_size == (16, 16, 8)

    def test_weight_bytes(self):
        conv = Conv2DStage("C1", input_size=(32, 32, 3), num_kernels=16,
                           kernel_size=(3, 3))
        assert conv.weight_bytes == 3 * 3 * 3 * 16

    def test_rejects_zero_kernels(self):
        with pytest.raises(ConfigurationError):
            Conv2DStage("C1", input_size=(32, 32, 3), num_kernels=0,
                        kernel_size=(3, 3))


class TestDepthwiseConv2D:
    def test_channels_preserved(self):
        dw = DepthwiseConv2DStage("DW", input_size=(32, 32, 16),
                                  kernel_size=(3, 3))
        assert dw.output_size == (32, 32, 16)

    def test_macs_much_cheaper_than_full_conv(self):
        dw = DepthwiseConv2DStage("DW", input_size=(32, 32, 16),
                                  kernel_size=(3, 3))
        conv = Conv2DStage("C", input_size=(32, 32, 16), num_kernels=16,
                           kernel_size=(3, 3))
        assert dw.num_macs * 15 < conv.num_macs


class TestFullyConnected:
    def test_macs(self):
        fc = FullyConnectedStage("FC", in_features=128, out_features=10)
        assert fc.num_macs == 1280

    def test_output_size(self):
        fc = FullyConnectedStage("FC", in_features=128, out_features=10)
        assert fc.output_size == (1, 1, 10)
        assert fc.output_pixels == 10

    def test_weight_bytes(self):
        fc = FullyConnectedStage("FC", in_features=128, out_features=10)
        assert fc.weight_bytes == 1280

    def test_rejects_bad_features(self):
        with pytest.raises(ConfigurationError):
            FullyConnectedStage("FC", in_features=0, out_features=10)
