"""Tests for the SensorSystem container."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO
from repro.hw.interface import Interface
from repro.hw.layer import COMPUTE_LAYER, Layer, OFF_CHIP, SENSOR_LAYER


def _system():
    return SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])


def _unit(layer=SENSOR_LAYER, name="PE"):
    return ComputeUnit(name, layer, input_pixels_per_cycle=(1, 1),
                       output_pixels_per_cycle=(1, 1),
                       energy_per_cycle=1e-12)


class TestLayers:
    def test_default_single_sensor_layer(self):
        system = SensorSystem("S")
        assert SENSOR_LAYER in system.layers
        assert not system.is_stacked

    def test_stacked_detection(self):
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65),
                                           Layer(COMPUTE_LAYER, 22)])
        assert system.is_stacked

    def test_offchip_host_does_not_make_it_stacked(self):
        system = _system()
        system.add_offchip_host(22)
        assert not system.is_stacked
        assert system.layers[OFF_CHIP].node_nm == 22

    def test_duplicate_layer_rejected(self):
        system = _system()
        with pytest.raises(ConfigurationError):
            system.add_layer(Layer(SENSOR_LAYER, 130))

    def test_off_chip_name_reserved(self):
        system = _system()
        with pytest.raises(ConfigurationError, match="reserved"):
            system.add_layer(Layer(OFF_CHIP, 22))

    def test_layer_validation(self):
        with pytest.raises(ConfigurationError):
            Layer("", 65)
        with pytest.raises(ConfigurationError):
            Layer("x", -1)


class TestUnits:
    def test_find_unit(self):
        system = _system()
        unit = _unit()
        system.add_compute_unit(unit)
        assert system.find_unit("PE") is unit

    def test_unknown_unit(self):
        with pytest.raises(ConfigurationError, match="no hardware unit"):
            _system().find_unit("ghost")

    def test_unknown_layer_rejected(self):
        system = _system()
        with pytest.raises(ConfigurationError, match="unknown layer"):
            system.add_compute_unit(_unit(layer="mezzanine"))

    def test_duplicate_names_rejected_across_kinds(self):
        system = _system()
        system.add_compute_unit(_unit(name="X"))
        fifo = FIFO("X", size=(1, 4), write_energy_per_word=0,
                    read_energy_per_word=0)
        with pytest.raises(ConfigurationError, match="duplicate"):
            system.add_memory(fifo)

    def test_all_units_enumeration(self):
        system = _system()
        array = AnalogArray("PA")
        array.add_component(ActivePixelSensor(), (4, 4))
        system.add_analog_array(array)
        system.add_compute_unit(_unit())
        assert {u.name for u in system.all_units()} == {"PA", "PE"}

    def test_layer_of(self):
        system = _system()
        unit = _unit()
        system.add_compute_unit(unit)
        assert system.layer_of(unit).node_nm == 65


class TestInterfaces:
    def test_default_interfaces(self):
        system = _system()
        assert system.offchip_interface.energy_per_byte == pytest.approx(
            100 * units.pJ)
        assert system.interlayer_interface.energy_per_byte == pytest.approx(
            1 * units.pJ)

    def test_override_interfaces(self):
        system = _system()
        system.set_offchip_interface(Interface("LVDS", 40 * units.pJ))
        assert system.offchip_interface.name == "LVDS"


class TestGeometry:
    def test_pixel_array_area(self):
        system = _system()
        system.set_pixel_array_geometry(400, 640, pitch=3 * units.um)
        expected = 400 * 640 * (3e-6) ** 2
        assert system.pixel_array_area == pytest.approx(expected)

    def test_no_geometry_means_zero_area(self):
        assert _system().pixel_array_area == 0.0

    def test_memory_area_by_layer(self):
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65),
                                           Layer(COMPUTE_LAYER, 22)])
        fifo = FIFO("F", COMPUTE_LAYER, size=(1, 4),
                    write_energy_per_word=0, read_energy_per_word=0,
                    area=2e-6)
        system.add_memory(fifo)
        assert system.memory_area(COMPUTE_LAYER) == pytest.approx(2e-6)
        assert system.memory_area(SENSOR_LAYER) == 0.0
        assert system.memory_area() == pytest.approx(2e-6)

    def test_invalid_geometry_rejected(self):
        system = _system()
        with pytest.raises(ConfigurationError):
            system.set_pixel_array_geometry(0, 640)
        with pytest.raises(ConfigurationError):
            system.set_pixel_array_geometry(400, 640, pitch=0)

    def test_describe_lists_everything(self):
        system = _system()
        system.add_compute_unit(_unit())
        text = system.describe()
        assert "PE" in text and "sensor" in text
