"""Shared fixtures: the paper's Fig. 5 example system, reusable per test."""

from __future__ import annotations

import pytest

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)

__all__ = ["FIG5_MAPPING", "build_fig5_stages", "build_fig5_system"]


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache(monkeypatch):
    """Insulate every test from an operator's ``REPRO_CACHE_DIR``.

    A populated personal cache directory would turn cold-path
    assertions (miss counters, ``cached`` flags) into disk hits; tests
    that exercise the env-var behavior set it explicitly.
    """
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Insulate every test from an operator's chaos/resilience env.

    A shell still exporting ``REPRO_FAULTS`` (or retry/timeout tuning)
    from a chaos-testing session would inject deterministic worker
    kills — or reshape retry budgets — inside unrelated unit tests.
    Scrub the variables and reset the cached fault injector so only
    tests that set them explicitly see them.
    """
    from repro.resilience.faults import reset_injector

    for variable in ("REPRO_FAULTS", "REPRO_RETRY_MAX_ATTEMPTS",
                     "REPRO_RETRY_BASE_DELAY_S", "REPRO_TASK_TIMEOUT_S",
                     "REPRO_EXECUTOR", "REPRO_LEASE_TTL_S",
                     "REPRO_HEARTBEAT_S"):
        monkeypatch.delenv(variable, raising=False)
    reset_injector()
    yield
    reset_injector()


@pytest.fixture
def fig5_stages():
    return build_fig5_stages()


@pytest.fixture
def fig5_system():
    return build_fig5_system()


@pytest.fixture
def fig5_mapping():
    return dict(FIG5_MAPPING)
