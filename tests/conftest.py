"""Shared fixtures: the paper's Fig. 5 example system, reusable per test."""

from __future__ import annotations

import pytest

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)

__all__ = ["FIG5_MAPPING", "build_fig5_stages", "build_fig5_system"]


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache(monkeypatch):
    """Insulate every test from an operator's ``REPRO_CACHE_DIR``.

    A populated personal cache directory would turn cold-path
    assertions (miss counters, ``cached`` flags) into disk hits; tests
    that exercise the env-var behavior set it explicitly.
    """
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


@pytest.fixture
def fig5_stages():
    return build_fig5_stages()


@pytest.fixture
def fig5_system():
    return build_fig5_system()


@pytest.fixture
def fig5_mapping():
    return dict(FIG5_MAPPING)
