"""Shared fixtures: the paper's Fig. 5 example system, reusable per test."""

from __future__ import annotations

import pytest

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)

__all__ = ["FIG5_MAPPING", "build_fig5_stages", "build_fig5_system"]


@pytest.fixture
def fig5_stages():
    return build_fig5_stages()


@pytest.fixture
def fig5_system():
    return build_fig5_system()


@pytest.fixture
def fig5_mapping():
    return dict(FIG5_MAPPING)
