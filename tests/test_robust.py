"""The statistical robustness subsystem: variation, ensembles, explore.

Covers the deterministic seed-addressed variation model (pure draws,
truncation, payload perturbation), the four ensemble runners and their
``repro.robust/1`` documents, the robust exploration reduction with its
zero-variation bit-identity guarantee, spec files, the CLI subcommand,
and the serve daemon's ``robust`` job kind.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.api.design import Design
from repro.api.registry import build_usecase
from repro.api.simulator import Simulator
from repro.exceptions import (ConfigurationError, SerializationError,
                              SimulationError)
from repro.explore import explore
from repro.robust import (CORNER_SETS, DEFAULT_METRICS, SAMPLE_AXIS,
                          Corner, Distribution, RobustResult, RobustSpec,
                          VariationModel, corner_from_pvt, corner_set,
                          corners, default_variation, explore_robust,
                          load_robust_spec, monte_carlo, perturb_design,
                          perturb_payload, quantile, robust_spec_from_dict,
                          sensitivity, standard_draw, worst_case)
from repro.tech.corners import PvtPoint, standard_pvt_points
from repro.usecases.edgaze import edgaze_space


@pytest.fixture(scope="module")
def fig5_design():
    return build_usecase("fig5")


@pytest.fixture(scope="module")
def edgaze_design():
    return build_usecase("edgaze", placement="2D-In", cis_node=65)


SMALL_VARIATION = VariationModel(sigma={
    "memory.write_energy_per_word": 0.05,
    "memory.read_energy_per_word": 0.05,
    "memory.leakage_power": 0.10,
    "compute.energy_per_cycle": 0.05,
    "compute.energy_per_mac": 0.05,
    "compute.clock_hz": 0.02,
    "interface.energy_per_byte": 0.05,
    "analog.load_capacitance": 0.05,
    "analog.node_capacitance": 0.05,
})


# --- satellite: chaos env never leaks into unit tests ----------------------

def test_conftest_scrubs_chaos_environment():
    for variable in ("REPRO_FAULTS", "REPRO_RETRY_MAX_ATTEMPTS",
                     "REPRO_RETRY_BASE_DELAY_S", "REPRO_TASK_TIMEOUT_S",
                     "REPRO_CACHE_DIR"):
        assert variable not in os.environ


# --- variation model -------------------------------------------------------

class TestDraws:
    def test_pure_function_of_seed_sample_param(self):
        first = standard_draw(7, 3, "memory.leakage_power")
        second = standard_draw(7, 3, "memory.leakage_power")
        assert first == second

    def test_distinct_addresses_decorrelate(self):
        draws = {standard_draw(seed, sample, param)
                 for seed in (0, 1) for sample in (1, 2, 3)
                 for param in ("memory.leakage_power",
                               "compute.clock_hz")}
        assert len(draws) == 12

    def test_normal_truncation(self):
        for sample in range(1, 400):
            z = standard_draw(0, sample, "analog.vdda", cutoff=2.0)
            assert abs(z) <= 2.0

    def test_uniform_bounds(self):
        width = math.sqrt(3.0)
        for sample in range(1, 200):
            z = standard_draw(0, sample, "analog.vdda", dist="uniform")
            assert -width <= z <= width

    def test_normal_draws_roughly_standard(self):
        draws = [standard_draw(1, sample, "memory.leakage_power")
                 for sample in range(1, 2001)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert abs(mean) < 0.1
        assert 0.8 < var < 1.2


class TestVariationModel:
    def test_nominal_sample_is_exactly_one(self):
        model = default_variation()
        assert all(factor == 1.0
                   for factor in model.factors(5, 0).values())

    def test_zero_sigma_is_exactly_one(self):
        model = VariationModel(sigma={"memory.leakage_power": 0.0})
        assert model.factor(1, 9, "memory.leakage_power") == 1.0
        assert model.is_zero

    def test_factors_deterministic(self):
        model = default_variation()
        assert model.factors(3, 11) == model.factors(3, 11)
        assert model.factors(3, 11) != model.factors(4, 11)

    def test_unknown_parameter_group_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            VariationModel(sigma={"memory.nonsense": 0.1})

    def test_excessive_sigma_rejected(self):
        with pytest.raises(ConfigurationError, match="factor <= 0"):
            VariationModel(sigma={"memory.leakage_power": 0.5}, cutoff=3.0)

    def test_bad_dist_rejected(self):
        with pytest.raises(ConfigurationError, match="dist"):
            VariationModel(sigma={}, dist="cauchy")

    def test_round_trip(self):
        model = VariationModel(sigma={"analog.vdda": 0.02},
                               dist="uniform", cutoff=2.5)
        assert VariationModel.from_dict(model.to_dict()) == model

    def test_extreme_corners_span_cutoff(self):
        model = VariationModel(sigma={"memory.leakage_power": 0.1},
                               cutoff=3.0)
        low, high = model.extreme_corners()
        assert low.factors["memory.leakage_power"] == pytest.approx(0.7)
        assert high.factors["memory.leakage_power"] == pytest.approx(1.3)


class TestPerturbation:
    def test_payload_fields_scale(self, fig5_design):
        payload = fig5_design.to_dict()
        doubled = perturb_payload(payload, {"memory.leakage_power": 2.0})
        for before, after in zip(payload["system"]["memories"],
                                 doubled["system"]["memories"]):
            assert after["leakage_power"] == 2.0 * before["leakage_power"]
            assert after["write_energy_per_word"] == \
                before["write_energy_per_word"]

    def test_interface_and_compute_scale(self, fig5_design):
        payload = fig5_design.to_dict()
        scaled = perturb_payload(payload, {"interface.energy_per_byte": 1.5,
                                           "compute.clock_hz": 0.5})
        assert scaled["system"]["offchip_interface"]["energy_per_byte"] == \
            1.5 * payload["system"]["offchip_interface"]["energy_per_byte"]
        for before, after in zip(payload["system"]["compute_units"],
                                 scaled["system"]["compute_units"]):
            assert after["clock_hz"] == 0.5 * before["clock_hz"]

    def test_original_payload_untouched(self, fig5_design):
        payload = fig5_design.to_dict()
        snapshot = json.dumps(payload, sort_keys=True)
        perturb_payload(payload, {"memory.leakage_power": 3.0})
        assert json.dumps(payload, sort_keys=True) == snapshot

    def test_all_ones_returns_identical_object(self, fig5_design):
        model = default_variation(0.0)
        assert perturb_design(fig5_design,
                              model.factors(0, 5)) is fig5_design

    def test_perturbed_design_changes_hash(self, fig5_design):
        perturbed = perturb_design(fig5_design,
                                   {"memory.write_energy_per_word": 1.01})
        assert isinstance(perturbed, Design)
        assert perturbed.content_hash != fig5_design.content_hash

    def test_missing_groups_are_noops(self, fig5_design):
        # fig5 has no single-slope ADC; the draw applies to nothing.
        perturbed = perturb_payload(fig5_design.to_dict(),
                                    {"analog.comparator_bias": 2.0})
        assert perturbed == fig5_design.to_dict()


# --- corners ---------------------------------------------------------------

class TestCorners:
    def test_standard_pvt_set(self):
        resolved = corner_set("pvt")
        names = [corner.name for corner in resolved]
        assert names[0] == "TT"
        assert len(names) == 5 == len(set(names))

    def test_tt_corner_is_near_nominal(self):
        tt = corner_from_pvt(PvtPoint("TT"))
        assert all(factor == pytest.approx(1.0)
                   for factor in tt.factors.values())

    def test_hot_corner_raises_leakage(self):
        hot = corner_from_pvt(PvtPoint("hot", "ff", 1.1, 125.0))
        cold = corner_from_pvt(PvtPoint("cold", "ff", 1.1, -40.0))
        assert hot.factors["memory.leakage_power"] > 2.0
        assert cold.factors["memory.leakage_power"] < \
            hot.factors["memory.leakage_power"]

    def test_vmin_lowers_dynamic_energy(self):
        vmin = corner_from_pvt(PvtPoint("vmin", "tt", 0.9, 25.0))
        assert vmin.factors["compute.energy_per_mac"] == pytest.approx(0.81)

    def test_unknown_set_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown corner set"):
            corner_set("ptv")
        assert "pvt" in CORNER_SETS

    def test_corner_validation(self):
        with pytest.raises(ConfigurationError):
            Corner("bad", {"memory.leakage_power": 0.0})
        with pytest.raises(ConfigurationError):
            Corner("bad", {"memory.wat": 1.1})


# --- distributions ---------------------------------------------------------

class TestDistribution:
    def test_quantile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.5) == pytest.approx(2.5)
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0

    def test_degenerate_sample_is_exact(self):
        dist = Distribution.from_values([0.125] * 9)
        assert dist.mean == 0.125 and dist.std == 0.0
        assert dist.quantiles["p95"] == 0.125

    def test_round_trip(self):
        dist = Distribution.from_values([1.0, 2.0, 5.0])
        assert Distribution.from_dict(dist.to_dict()) == dist


# --- ensemble runners ------------------------------------------------------

class TestMonteCarlo:
    def test_accounting_and_distributions(self, fig5_design):
        result = monte_carlo(fig5_design, SMALL_VARIATION,
                             samples=12, seed=1)
        assert result.accounting == {"total": 12, "ok": 12, "failed": 0}
        assert set(result.distributions) == set(DEFAULT_METRICS)
        dist = result.distributions["energy_per_frame"]
        assert dist.minimum <= dist.quantiles["p50"] <= dist.maximum

    def test_replays_bit_identically(self, fig5_design):
        first = monte_carlo(fig5_design, SMALL_VARIATION,
                            samples=10, seed=3)
        second = monte_carlo(fig5_design, SMALL_VARIATION,
                             samples=10, seed=3)
        assert first.to_json() == second.to_json()

    def test_thread_vs_process_executors_bit_identical(self, fig5_design):
        """Satellite: draws are pure in (seed, sample, param), so the
        executor fanning the ensemble out cannot change the document."""
        with Simulator(executor="thread") as threaded:
            first = monte_carlo(fig5_design, SMALL_VARIATION,
                                samples=6, seed=9, simulator=threaded)
        with Simulator(executor="process") as processed:
            second = monte_carlo(fig5_design, SMALL_VARIATION,
                                 samples=6, seed=9, simulator=processed)
        assert first.to_json() == second.to_json()

    def test_zero_variation_collapses_to_nominal(self, fig5_design):
        result = monte_carlo(fig5_design, default_variation(0.0),
                             samples=5, seed=2)
        for metric, dist in result.distributions.items():
            assert dist.std == 0.0
            assert dist.mean == result.nominal[metric]

    def test_warm_ensemble_hits_cache(self, fig5_design):
        with Simulator() as sim:
            monte_carlo(fig5_design, SMALL_VARIATION,
                        samples=6, seed=4, simulator=sim)
            cold_hits = sim.cache_info().hits
            monte_carlo(fig5_design, SMALL_VARIATION,
                        samples=6, seed=4, simulator=sim)
            assert sim.cache_info().hits >= cold_hits + 7

    def test_round_trip(self, fig5_design):
        result = monte_carlo(fig5_design, SMALL_VARIATION,
                             samples=4, seed=1)
        assert RobustResult.from_dict(result.to_dict()).to_json() == \
            result.to_json()

    def test_seed_changes_samples(self, fig5_design):
        first = monte_carlo(fig5_design, SMALL_VARIATION,
                            samples=8, seed=0)
        second = monte_carlo(fig5_design, SMALL_VARIATION,
                             samples=8, seed=1)
        assert first.distributions["energy_per_frame"] != \
            second.distributions["energy_per_frame"]

    def test_progress_and_cancel(self, fig5_design):
        calls = []
        monte_carlo(fig5_design, SMALL_VARIATION, samples=5, seed=1,
                    chunk_size=2,
                    on_progress=lambda *args: calls.append(args))
        assert calls[-1][0] == calls[-1][1] == 6
        from repro.explore import ExplorationInterrupted
        with pytest.raises(ExplorationInterrupted):
            monte_carlo(fig5_design, SMALL_VARIATION, samples=5, seed=1,
                        chunk_size=2, should_stop=lambda: True)


class TestCornersRunner:
    def test_bounds_name_responsible_corner(self, fig5_design):
        result = corners(fig5_design, "pvt")
        assert result.accounting["total"] == 5
        bound = result.bounds["energy_per_frame"]
        names = {outcome["corner"] for outcome in result.corners}
        assert bound["worst"]["corner"] in names | {"nominal"}
        assert bound["worst"]["value"] >= bound["best"]["value"]

    def test_explicit_corner_list(self, fig5_design):
        double = Corner("leaky", {"memory.leakage_power": 2.0})
        result = corners(fig5_design, [double])
        outcome = result.corners[0]
        assert outcome["corner"] == "leaky" and outcome["feasible"]

    def test_round_trip(self, fig5_design):
        result = corners(fig5_design, "pvt")
        assert RobustResult.from_dict(result.to_dict()).to_json() == \
            result.to_json()


class TestSensitivity:
    def test_leakage_raises_energy(self, edgaze_design):
        model = VariationModel(sigma={"memory.leakage_power": 0.1,
                                      "compute.clock_hz": 0.02})
        result = sensitivity(edgaze_design, model)
        rows = {row["param"]: row
                for row in result.sensitivities["energy_per_frame"]}
        assert rows["memory.leakage_power"]["elasticity"] > 0

    def test_rankings_stable_across_sessions(self, fig5_design):
        """Satellite: OAT excursions are seed-free central differences,
        so rankings cannot move between runs or (re)seedings."""
        first = sensitivity(fig5_design, SMALL_VARIATION)
        second = sensitivity(fig5_design, SMALL_VARIATION)
        assert first.to_json() == second.to_json()
        order = [row["param"]
                 for row in first.sensitivities["energy_per_frame"]]
        assert order == sorted(
            order,
            key=lambda param: -(abs(
                {r["param"]: r for r
                 in first.sensitivities["energy_per_frame"]}[param]
                ["elasticity"] or 0.0)))

    def test_ranks_are_one_based_and_dense(self, fig5_design):
        result = sensitivity(fig5_design, SMALL_VARIATION)
        for rows in result.sensitivities.values():
            assert [row["rank"] for row in rows] == \
                list(range(1, len(rows) + 1))


class TestWorstCase:
    def test_bounds_attach_synthetic_corners(self, fig5_design):
        result = worst_case(fig5_design, SMALL_VARIATION)
        bound = result.bounds["energy_per_frame"]
        assert bound["worst"]["corner"] == "worst:energy_per_frame"
        assert bound["worst"]["value"] >= result.nominal["energy_per_frame"]
        assert bound["best"]["value"] <= result.nominal["energy_per_frame"]
        factors = {outcome["corner"]: outcome["factors"]
                   for outcome in result.corners}
        assert "worst:energy_per_frame" in factors

    def test_nominal_failure_raises(self):
        # An absurd frame rate makes the nominal design infeasible.
        design = build_usecase("fig5")
        from repro.api.result import SimOptions
        with pytest.raises(SimulationError, match="infeasible"):
            monte_carlo(design, SMALL_VARIATION, samples=2,
                        options=SimOptions(frame_rate=1e9))


@pytest.mark.parametrize("usecase,params", [
    ("fig5", {}),
    ("edgaze", {"placement": "2D-In", "cis_node": 65}),
])
def test_worst_case_envelops_monte_carlo(usecase, params):
    """Satellite property: the directed worst/best bounds (evaluated at
    the truncation extremes) envelop any Monte Carlo ensemble of the
    same model on the standard usecases — the energy/latency models are
    monotone in every multiplicative parameter factor."""
    design = build_usecase(usecase, **params)
    with Simulator() as sim:
        bounds = worst_case(design, SMALL_VARIATION, simulator=sim)
        sampled = monte_carlo(design, SMALL_VARIATION, samples=48,
                              seed=17, simulator=sim)
        assert sampled.accounting["failed"] == 0
        for metric in DEFAULT_METRICS:
            dist = sampled.distributions[metric]
            worst = bounds.bounds[metric]["worst"]["value"]
            best = bounds.bounds[metric]["best"]["value"]
            lo, hi = sorted((worst, best))
            assert dist.maximum <= hi * (1 + 1e-9)
            assert dist.minimum >= lo * (1 - 1e-9)


def test_extreme_corners_envelop_monte_carlo():
    """Satellite property: the all-low/all-high box corners of the
    truncated model bound every sampled metric via ``corners()``."""
    design = build_usecase("edgaze", placement="2D-Off", cis_node=130)
    energy_only = VariationModel(sigma={
        param: sigma for param, sigma in SMALL_VARIATION.sigma.items()
        if param != "compute.clock_hz"})
    with Simulator() as sim:
        boxed = corners(design, energy_only.extreme_corners(),
                        metrics=["energy_per_frame"], simulator=sim)
        sampled = monte_carlo(design, energy_only, samples=32, seed=5,
                              metrics=["energy_per_frame"], simulator=sim)
        bound = boxed.bounds["energy_per_frame"]
        dist = sampled.distributions["energy_per_frame"]
        assert dist.maximum <= bound["worst"]["value"] * (1 + 1e-9)
        assert dist.minimum >= bound["best"]["value"] * (1 - 1e-9)


# --- robust exploration ----------------------------------------------------

class TestExploreRobust:
    def test_zero_variation_bit_identical_to_nominal(self):
        space = edgaze_space()
        with Simulator() as sim:
            nominal = explore(space, "edgaze", simulator=sim,
                              engine="object")
            zero = explore_robust(space, "edgaze",
                                  variation=default_variation(0.0),
                                  samples=3, seed=11, simulator=sim,
                                  engine="object")
        assert nominal.to_json() == zero.to_json()

    def test_statistics_shift_ranking_values(self):
        space = edgaze_space()
        with Simulator() as sim:
            robust = explore_robust(
                space, "edgaze",
                objectives=["energy_per_frame", "robust_yield"],
                variation=SMALL_VARIATION, samples=8, seed=2,
                statistic="p95", simulator=sim)
            nominal = explore(space, "edgaze",
                              objectives=["energy_per_frame"],
                              simulator=sim)
        by_params = {json.dumps(p.params, sort_keys=True): p
                     for p in nominal.points}
        for point in robust.points:
            key = json.dumps(point.params, sort_keys=True)
            assert point.metrics["robust_yield"] == 1.0
            # p95 of a spread ensemble sits above the sample median;
            # against the nominal it can go either way, but it must
            # stay within the truncated spread of it.
            assert point.metrics["energy_per_frame"] == pytest.approx(
                by_params[key].metrics["energy_per_frame"], rel=0.5)

    def test_worst_statistic_dominates_nominal(self):
        space = edgaze_space()
        with Simulator() as sim:
            worst = explore_robust(space, "edgaze",
                                   objectives=["energy_per_frame"],
                                   variation=SMALL_VARIATION, samples=6,
                                   seed=4, statistic="worst",
                                   simulator=sim)
            nom = explore(space, "edgaze",
                          objectives=["energy_per_frame"], simulator=sim)
        for robust_point, nominal_point in zip(worst.points, nom.points):
            assert robust_point.params == nominal_point.params
            assert robust_point.metrics["energy_per_frame"] >= \
                nominal_point.metrics["energy_per_frame"]

    def test_sample_axis_collision_rejected(self):
        from repro.explore.space import choice
        with pytest.raises(ConfigurationError, match="robust.sample"):
            explore_robust(choice(SAMPLE_AXIS, [1]), "fig5",
                           variation=default_variation())

    def test_bad_statistic_rejected(self):
        with pytest.raises(ConfigurationError, match="statistic"):
            explore_robust(edgaze_space(), "edgaze",
                           variation=default_variation(),
                           statistic="p999")

    def test_per_objective_statistics(self):
        space = edgaze_space()
        with Simulator() as sim:
            result = explore_robust(
                space, "edgaze",
                objectives=["energy_per_frame", "latency"],
                variation=SMALL_VARIATION, samples=5, seed=1,
                statistic={"latency": "worst"}, simulator=sim)
        assert all(point.feasible for point in result.points)


# --- specs, CLI, and the daemon -------------------------------------------

def _mc_spec_payload(samples=4):
    return {
        "schema": "repro.robust-spec/1",
        "kind": "monte_carlo",
        "usecase": "fig5",
        "variation": {"sigma": {"memory.leakage_power": 0.1}},
        "samples": samples,
        "seed": 2,
        "metrics": ["energy_per_frame"],
    }


class TestRobustSpec:
    def test_round_trip_all_kinds(self):
        specs = [
            _mc_spec_payload(),
            {"kind": "corners", "usecase": "fig5", "corners": "pvt"},
            {"kind": "sensitivity", "usecase": "fig5", "delta": 2.0,
             "variation": {"sigma": {"memory.leakage_power": 0.1}}},
            {"kind": "worst_case", "usecase": "fig5",
             "variation": {"sigma": {"memory.leakage_power": 0.1}}},
            {"kind": "explore", "usecase": "edgaze",
             "space": {"name": "cis_node", "values": [130, 65]},
             "variation": {"sigma": {"memory.leakage_power": 0.1}},
             "statistic": "p90", "samples": 3},
        ]
        for payload in specs:
            spec = robust_spec_from_dict(payload)
            again = robust_spec_from_dict(spec.to_dict())
            assert again.to_dict() == spec.to_dict()

    def test_unknown_keys_rejected(self):
        payload = _mc_spec_payload()
        payload["simga"] = {}
        with pytest.raises(SerializationError, match="unknown"):
            robust_spec_from_dict(payload)

    def test_usecase_xor_design(self):
        payload = _mc_spec_payload()
        del payload["usecase"]
        with pytest.raises(SerializationError, match="usecase"):
            robust_spec_from_dict(payload)

    def test_variation_required(self):
        payload = _mc_spec_payload()
        del payload["variation"]
        with pytest.raises(SerializationError, match="variation"):
            robust_spec_from_dict(payload)

    def test_inline_design_payload(self, fig5_design):
        payload = _mc_spec_payload()
        del payload["usecase"]
        payload["design"] = fig5_design.to_dict()
        spec = robust_spec_from_dict(payload)
        assert spec.build_design().content_hash == fig5_design.content_hash

    def test_run_document_matches_runner(self, fig5_design):
        spec = robust_spec_from_dict(_mc_spec_payload())
        document = spec.run_document()
        direct = monte_carlo(
            fig5_design,
            VariationModel(sigma={"memory.leakage_power": 0.1}),
            samples=4, seed=2, metrics=["energy_per_frame"])
        assert document == direct.to_dict()

    def test_explore_kind_wraps_result(self):
        spec = robust_spec_from_dict({
            "kind": "explore", "usecase": "edgaze",
            "space": {"name": "cis_node", "values": [130, 65]},
            "variation": {"sigma": {"memory.leakage_power": 0.1}},
            "samples": 2, "seed": 1})
        document = spec.run_document()
        assert document["schema"] == "repro.robust/1"
        assert document["kind"] == "explore"
        assert document["result"]["schema"] == "repro.explore/1"
        assert len(document["result"]["points"]) == 2


class TestRobustCli:
    def test_cli_runs_spec(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = tmp_path / "study.json"
        spec_path.write_text(json.dumps(_mc_spec_payload()))
        out_path = tmp_path / "result.json"
        code = main(["robust", str(spec_path), "-o", str(out_path),
                     "--samples", "3"])
        assert code == 0
        assert "monte_carlo study" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro.robust/1"
        assert document["accounting"] == {"total": 3, "ok": 3, "failed": 0}

    def test_cli_json_mode(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = tmp_path / "study.json"
        spec_path.write_text(json.dumps(_mc_spec_payload(samples=2)))
        assert main(["robust", str(spec_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "monte_carlo"

    def test_cli_bad_spec(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = tmp_path / "study.json"
        spec_path.write_text("{\"kind\": \"nope\"}")
        assert main(["robust", str(spec_path)]) == 1
        assert "cannot load spec" in capsys.readouterr().err

    def test_load_robust_spec(self, tmp_path):
        spec_path = tmp_path / "study.json"
        spec_path.write_text(json.dumps(_mc_spec_payload()))
        assert load_robust_spec(spec_path).kind == "monte_carlo"


class TestServeRobustJobs:
    def test_robust_job_kind_inferred_and_runs(self):
        from repro.serve.app import BackgroundServer
        with BackgroundServer(workers=1) as server:
            client = server.client()
            job = client.submit(_mc_spec_payload())
            assert job["kind"] == "robust"
            done = client.wait(job["id"])
            assert done["state"] == "done"
            assert done["progress"]["completed"] == \
                done["progress"]["total"] == 5
            result = client.result(job["id"])["result"]
            assert result["schema"] == "repro.robust/1"
            assert result["accounting"]["failed"] == 0

    def test_robust_envelope_kind(self):
        from repro.serve.app import BackgroundServer
        with BackgroundServer(workers=1) as server:
            client = server.client()
            job = client.submit(_mc_spec_payload(), kind="robust")
            assert client.wait(job["id"])["state"] == "done"

    def test_robust_job_replays_identically_across_restart(self, tmp_path):
        """Satellite: the journaled spec re-runs to a bit-identical
        document because every draw is seed-addressed."""
        from repro.serve.app import BackgroundServer
        journal = tmp_path / "journal"
        with BackgroundServer(workers=1,
                              journal_dir=str(journal)) as server:
            client = server.client()
            job = client.submit(_mc_spec_payload())
            client.wait(job["id"])
            first = client.result(job["id"])["result"]
        with BackgroundServer(workers=1,
                              journal_dir=str(journal)) as server:
            client = server.client()
            restored = client.result(job["id"])["result"]
            assert restored == first
            again = client.submit(_mc_spec_payload())
            client.wait(again["id"])
            assert client.result(again["id"])["result"] == first

    def test_bad_robust_spec_is_typed_400(self):
        from repro.serve.app import BackgroundServer
        from repro.serve.client import ServeError
        with BackgroundServer(workers=1) as server:
            client = server.client()
            bad = _mc_spec_payload()
            bad["variation"] = {"sigma": {"memory.wat": 0.1}}
            with pytest.raises(ServeError):
                client.submit(bad)
