"""Tests for delay estimation (Sec. 4.1, Fig. 6)."""

import pytest

from repro.exceptions import ConfigurationError, TimingError
from repro.sim.delay import estimate_frame_timing


class TestFrameTiming:
    def test_fig6_arithmetic(self):
        """3 * T_A + T_D = T_FR for two analog arrays + exposure."""
        timing = estimate_frame_timing(frame_rate=30, digital_latency=2e-3,
                                       num_analog_arrays=2)
        frame_time = 1 / 30
        assert timing.frame_time == pytest.approx(frame_time)
        assert timing.num_analog_slots == 3
        assert timing.analog_stage_delay == pytest.approx(
            (frame_time - 2e-3) / 3)
        assert (timing.analog_total_time + timing.digital_latency
                == pytest.approx(frame_time))

    def test_zero_digital_latency(self):
        timing = estimate_frame_timing(frame_rate=60, digital_latency=0.0,
                                       num_analog_arrays=1)
        assert timing.analog_stage_delay == pytest.approx((1 / 60) / 2)

    def test_higher_fps_shrinks_analog_delay(self):
        slow = estimate_frame_timing(30, 1e-3, 2)
        fast = estimate_frame_timing(120, 1e-3, 2)
        assert fast.analog_stage_delay < slow.analog_stage_delay

    def test_digital_overrun_raises_timing_error(self):
        """The 're-design the accelerator' feedback."""
        with pytest.raises(TimingError, match="re-design"):
            estimate_frame_timing(frame_rate=1000, digital_latency=2e-3,
                                  num_analog_arrays=2)

    def test_no_analog_arrays_all_budget_to_exposure(self):
        timing = estimate_frame_timing(frame_rate=30, digital_latency=0.0,
                                       num_analog_arrays=0)
        assert timing.num_analog_slots == 1
        assert timing.analog_stage_delay == pytest.approx(1 / 30)

    def test_custom_exposure_slots(self):
        timing = estimate_frame_timing(frame_rate=30, digital_latency=0.0,
                                       num_analog_arrays=2,
                                       exposure_slots=0)
        assert timing.num_analog_slots == 2

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            estimate_frame_timing(0, 1e-3, 2)
        with pytest.raises(ConfigurationError):
            estimate_frame_timing(30, -1.0, 2)
        with pytest.raises(ConfigurationError):
            estimate_frame_timing(30, 1e-3, -1)
        with pytest.raises(ConfigurationError):
            estimate_frame_timing(30, 1e-3, 2, exposure_slots=-1)
