"""Tests for the three-layer stacked (IMX400-style) design."""

import pytest

from repro import units
from repro.area import estimate_area, layer_power_density
from repro.energy.report import Category
from repro.usecases.threelayer import (
    DRAM_LAYER,
    LOGIC_LAYER,
    build_three_layer,
    run_three_layer,
)


@pytest.fixture(scope="module")
def report():
    return run_three_layer()


class TestStructure:
    def test_three_on_chip_layers(self):
        _, system, _ = build_three_layer()
        assert set(system.layers) == {"sensor", DRAM_LAYER, LOGIC_LAYER}
        assert system.is_stacked

    def test_layers_use_heterogeneous_nodes(self):
        _, system, _ = build_three_layer()
        nodes = {layer.node_nm for layer in system.layers.values()}
        assert len(nodes) == 3

    def test_dram_on_its_own_layer(self):
        _, system, _ = build_three_layer()
        assert system.find_unit("FrameDRAM").layer == DRAM_LAYER


class TestEnergy:
    def test_every_layer_burns_energy(self, report):
        by_layer = report.by_layer()
        for layer in ("sensor", DRAM_LAYER, LOGIC_LAYER):
            assert by_layer.get(layer, 0.0) > 0, layer

    def test_utsv_crossings_billed_per_hop(self, report):
        """Pixel->DRAM->logic is two uTSV hops for the full frame."""
        utsv_entries = [e for e in report.entries
                        if e.category is Category.UTSV]
        assert utsv_entries, "expected uTSV crossings"
        frame_bytes = 1080 * 1920 * 10 / 8
        two_hops = 2 * frame_bytes * 1 * units.pJ
        pixel_edge = [e for e in utsv_entries if "Input" in e.name][0]
        assert pixel_edge.energy == pytest.approx(two_hops)

    def test_utsv_far_cheaper_than_mipi(self, report):
        assert (report.category_energy(Category.UTSV)
                < 0.2 * report.category_energy(Category.MIPI))

    def test_encoded_output_shrinks_mipi(self, report):
        """The encoder ships 25 % of the 1080p frame."""
        full_frame_bytes = 1080 * 1920
        mipi = report.category_energy(Category.MIPI)
        assert mipi < full_frame_bytes * 100 * units.pJ

    def test_burst_rate_feasible(self):
        """960 FPS burst capture fits the frame budget."""
        report = run_three_layer(burst_fps=960)
        assert report.digital_latency < report.frame_time

    def test_lower_fps_cheaper_power(self):
        slow = run_three_layer(burst_fps=240)
        fast = run_three_layer(burst_fps=960)
        assert slow.total_power < fast.total_power


class TestDensity:
    def test_footprint_is_pixel_array(self):
        _, system, _ = build_three_layer()
        areas = estimate_area(system)
        assert areas.footprint == pytest.approx(system.pixel_array_area)

    def test_sensor_layer_density_highest_at_burst_rate(self, report):
        """At 960 FPS the pixel/ADC readout dominates the power density."""
        _, system, _ = build_three_layer()
        densities = layer_power_density(system, report)
        assert densities["sensor"] > densities[LOGIC_LAYER]
        assert densities[DRAM_LAYER] > 0
