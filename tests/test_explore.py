"""Tests for the unified design-space exploration engine."""

import json

import pytest

from repro.api import SimOptions, Simulator
from repro.exceptions import ConfigurationError, SerializationError
from repro.explore import (
    ExplorationResult,
    Metric,
    available_metrics,
    choice,
    dominance_ranks,
    dominates,
    explore,
    exploration_spec_from_dict,
    grid,
    linspace,
    metric,
    pareto_indices,
    product,
    register_metric,
    resolve_metrics,
    space_from_dict,
    zipped,
)
from repro.usecases.fig5 import build_fig5_design


class TestSpaces:
    def test_choice_axis(self):
        axis = choice("node", [130, 65, 28])
        assert len(axis) == 3
        assert axis.names == ("node",)
        assert list(axis) == [{"node": 130}, {"node": 65}, {"node": 28}]

    def test_choice_allows_non_numeric_values(self):
        axis = choice("memory", ["sram", "stt-ram"])
        assert [p["memory"] for p in axis] == ["sram", "stt-ram"]

    def test_linspace_hits_endpoints(self):
        axis = linspace("fps", 15.0, 120.0, 4)
        values = [p["fps"] for p in axis]
        assert values[0] == 15.0 and values[-1] == 120.0
        assert len(values) == 4
        assert values == sorted(values)

    def test_linspace_single_point(self):
        assert [p["fps"] for p in linspace("fps", 30, 60, 1)] == [30.0]

    def test_product_order_last_axis_fastest(self):
        space = product(choice("a", [1, 2]), choice("b", ["x", "y"]))
        assert len(space) == 4
        assert list(space) == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                               {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]

    def test_grid_shorthand(self):
        space = grid(a=[1, 2], b=[3, 4, 5])
        assert len(space) == 6
        assert space.names == ("a", "b")

    def test_mul_operator_is_product(self):
        space = choice("a", [1, 2]) * choice("b", [3])
        assert list(space) == [{"a": 1, "b": 3}, {"a": 2, "b": 3}]

    def test_zip_lockstep(self):
        space = zipped(choice("a", [1, 2]), choice("b", ["x", "y"]))
        assert len(space) == 2
        assert list(space) == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            zipped(choice("a", [1, 2]), choice("b", [1, 2, 3]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            product(choice("a", [1]), choice("a", [2]))

    def test_filter_subspace(self):
        space = grid(a=[1, 2, 3], b=[1, 2, 3]).filter(
            lambda p: p["a"] + p["b"] <= 3)
        assert len(space) == 3
        assert all(p["a"] + p["b"] <= 3 for p in space)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            choice("a", [])

    def test_lazy_enumeration(self):
        """Spaces enumerate lazily: a huge product costs nothing to make."""
        space = grid(a=list(range(1000)), b=list(range(1000)))
        assert len(space) == 1_000_000
        first = next(iter(space))
        assert first == {"a": 0, "b": 0}


class TestSpaceSerialization:
    def test_round_trip_product(self):
        space = product(choice("placement", ["2D-In", "3D-In"]),
                        linspace("fps", 15, 120, 4))
        payload = space.to_dict()
        again = space_from_dict(payload)
        assert list(again) == list(space)
        assert again.to_dict() == payload

    def test_round_trip_zip(self):
        space = zipped(choice("a", [1, 2]), choice("b", [3, 4]))
        assert list(space_from_dict(space.to_dict())) == list(space)

    def test_bare_list_is_product(self):
        space = space_from_dict([{"name": "a", "values": [1, 2]},
                                 {"name": "b", "values": [3]}])
        assert list(space) == [{"a": 1, "b": 3}, {"a": 2, "b": 3}]

    def test_filtered_space_has_no_json_form(self):
        space = choice("a", [1, 2]).filter(lambda p: True)
        with pytest.raises(SerializationError):
            space.to_dict()

    def test_malformed_specs_rejected(self):
        for payload in ("nope", {"axes": []}, {"product": []},
                        {"name": "a"}, {"name": "a", "values": 3},
                        {"name": "a", "values": [1], "weird": True},
                        {"name": "a", "linspace": {"start": 1}}):
            with pytest.raises(SerializationError):
                space_from_dict(payload)


class TestMetrics:
    def test_builtins_registered(self):
        names = available_metrics()
        for expected in ("energy_per_frame", "power_density", "latency",
                         "area", "energy:MEM-D", "share:SEN"):
            assert expected in names

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            metric("definitely_not_registered")

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_metrics(["latency", "latency"])

    def test_empty_objectives_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_metrics([])

    def test_bad_goal_rejected(self):
        with pytest.raises(ConfigurationError):
            Metric("m", unit="x", extract=lambda d, r: 0.0, goal="upward")

    def test_custom_metric_usable_as_objective(self):
        from repro.explore import metrics as metrics_module
        register_metric(Metric(
            "test_total_nj", unit="nJ",
            extract=lambda design, report: report.total_energy * 1e9))
        try:
            result = explore(choice("options.frame_rate", [30.0]),
                             build_fig5_design,
                             objectives=("test_total_nj",), annotate=False)
        finally:
            metrics_module._REGISTRY.pop("test_total_nj", None)
        point = result.points[0]
        assert point.metrics["test_total_nj"] == pytest.approx(
            point.report.total_energy * 1e9)


class TestDominance:
    GOALS = ("min", "min")

    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0), self.GOALS)
        assert not dominates((2.0, 2.0), (1.0, 1.0), self.GOALS)

    def test_tie_dominates_neither_way(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0), self.GOALS)

    def test_partial_tie_dominates(self):
        assert dominates((1.0, 2.0), (1.0, 3.0), self.GOALS)

    def test_trade_off_incomparable(self):
        assert not dominates((1.0, 3.0), (3.0, 1.0), self.GOALS)
        assert not dominates((3.0, 1.0), (1.0, 3.0), self.GOALS)

    def test_max_goal_flips_direction(self):
        assert dominates((1.0, 5.0), (1.0, 4.0), ("min", "max"))
        assert not dominates((1.0, 4.0), (1.0, 5.0), ("min", "max"))

    def test_nan_incomparable(self):
        nan = float("nan")
        assert not dominates((nan, 0.0), (1.0, 1.0), self.GOALS)
        assert not dominates((1.0, 1.0), (nan, 0.0), self.GOALS)

    def test_vector_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            dominates((1.0,), (1.0, 2.0), self.GOALS)

    def test_unknown_goal_rejected(self):
        for goals in (("MAX", "min"), ("maximize", "min"), ("", "min")):
            with pytest.raises(ConfigurationError):
                dominates((1.0, 1.0), (2.0, 2.0), goals)

    def test_single_point_is_the_frontier(self):
        assert pareto_indices([(1.0, 1.0)], self.GOALS) == [0]
        assert dominance_ranks([(1.0, 1.0)], self.GOALS) == [0]

    def test_all_dominated_by_one(self):
        vectors = [(5.0, 5.0), (1.0, 1.0), (3.0, 4.0)]
        assert pareto_indices(vectors, self.GOALS) == [1]
        assert dominance_ranks(vectors, self.GOALS) == [2, 0, 1]

    def test_value_ties_all_kept_on_frontier(self):
        vectors = [(1.0, 2.0), (1.0, 2.0), (2.0, 1.0)]
        assert pareto_indices(vectors, self.GOALS) == [0, 1, 2]

    def test_three_objective_frontier(self):
        vectors = [(1, 2, 3), (2, 1, 3), (3, 2, 1), (3, 3, 3)]
        front = pareto_indices(vectors, ("min", "min", "min"))
        assert front == sorted(front, key=lambda i: (vectors[i], i))
        assert set(front) == {0, 1, 2}

    def test_frontier_order_stable_under_permutation(self):
        vectors = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (4.0, 4.0)]
        front_a = [vectors[i] for i in pareto_indices(vectors, self.GOALS)]
        shuffled = [vectors[2], vectors[3], vectors[0], vectors[1]]
        front_b = [shuffled[i] for i in pareto_indices(shuffled, self.GOALS)]
        assert front_a == front_b

    def test_nan_vector_never_on_frontier(self):
        vectors = [(float("nan"), 0.0), (1.0, 1.0)]
        assert pareto_indices(vectors, self.GOALS) == [1]
        assert dominance_ranks(vectors, self.GOALS) == [None, 0]


class TestEngine:
    def test_options_axis_marks_infeasible_points(self):
        """Absurd FPS targets come back as typed points, not exceptions."""
        result = explore(choice("options.frame_rate", [30.0, 1e7]),
                         build_fig5_design,
                         objectives=("energy_per_frame",), annotate=False)
        ok, bad = result.points
        assert ok.feasible and not bad.feasible
        assert bad.failure_type == "TimingError"
        assert "re-design" in bad.failure
        assert bad.metrics == {}
        assert result.feasible_points == [ok]
        assert result.infeasible_points == [bad]

    def test_option_axis_builds_design_once(self):
        calls = []

        def builder():
            calls.append(1)
            return build_fig5_design()

        explore(choice("options.frame_rate", [15.0, 30.0, 60.0]),
                lambda **_: builder(), objectives=("energy_per_frame",),
                annotate=False)
        assert len(calls) == 1

    def test_builder_failure_marks_the_point(self):
        def builder(value):
            if value == 2:
                raise ConfigurationError("value 2 is unbuildable")
            return build_fig5_design()

        result = explore(choice("value", [1, 2, 3]),
                         lambda value: builder(value),
                         objectives=("energy_per_frame",), annotate=False)
        assert [p.feasible for p in result.points] == [True, False, True]
        failed = result.points[1]
        assert failed.failure_type == "ConfigurationError"
        assert "unbuildable" in failed.failure
        assert failed.params == {"value": 2}

    def test_metric_failure_marks_the_point(self):
        from repro.explore import metrics as metrics_module
        register_metric(Metric(
            "test_always_fails", unit="x",
            extract=lambda design, report: (_ for _ in ()).throw(
                ConfigurationError("cannot compute"))))
        try:
            result = explore(choice("options.frame_rate", [30.0]),
                             build_fig5_design,
                             objectives=("test_always_fails",),
                             annotate=False)
        finally:
            metrics_module._REGISTRY.pop("test_always_fails", None)
        point = result.points[0]
        assert not point.feasible
        assert "test_always_fails" in point.failure
        # The report survives for debugging even though the point failed.
        assert point.report is not None

    def test_unknown_options_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            explore(choice("options.warp_factor", [9]),
                    build_fig5_design, objectives=("energy_per_frame",))

    def test_legacy_triple_builders_accepted(self):
        from repro.usecases.fig5 import (FIG5_MAPPING, build_fig5_stages,
                                         build_fig5_system)

        result = explore(
            choice("options.frame_rate", [30.0]),
            lambda **_: (build_fig5_stages(), build_fig5_system(),
                         dict(FIG5_MAPPING)),
            objectives=("energy_per_frame",), annotate=False)
        assert result.points[0].feasible

    def test_usecase_name_as_builder(self):
        result = explore(grid(placement=["2D-In"], cis_node=[65]),
                         "edgaze", objectives=("energy_per_frame",),
                         annotate=False)
        assert result.name == "edgaze"
        assert result.points[0].feasible

    def test_shared_session_dedups_across_explorations(self):
        simulator = Simulator()
        explore(choice("options.frame_rate", [30.0, 60.0]),
                build_fig5_design, objectives=("energy_per_frame",),
                simulator=simulator, annotate=False)
        explore(choice("options.frame_rate", [30.0, 60.0]),
                build_fig5_design, objectives=("energy_per_frame",),
                simulator=simulator, annotate=False)
        assert simulator.cache_info().hits >= 2

    def test_annotation_attaches_bottleneck(self):
        result = explore(choice("options.frame_rate", [30.0]),
                         build_fig5_design,
                         objectives=("energy_per_frame",))
        bottleneck = result.points[0].bottleneck
        assert bottleneck is not None
        assert bottleneck.share > 0
        assert bottleneck.hint

    def test_three_objective_edgaze_frontier(self):
        """Acceptance: >=2 axes, >=3 objectives, frontier extracted."""
        from repro.usecases import edgaze_space

        result = explore(edgaze_space(), "edgaze",
                         objectives=("energy_per_frame", "power_density",
                                     "latency"))
        assert len(result.points) == 8
        assert len(result.objectives) == 3
        frontier = result.frontier()
        assert 1 <= len(frontier) < len(result.points)
        labels = {(p.params["placement"], p.params["cis_node"])
                  for p in frontier}
        # 3D stacking trades energy against density, so STT lands on the
        # frontier while plain 2D-In at 65 nm is strictly dominated.
        assert ("3D-In-STT", 65) in labels
        assert ("2D-In", 65) not in labels
        ranks = result.dominance_ranks()
        assert all(rank is not None for rank in ranks)
        assert sorted(set(ranks))[0] == 0


class TestResultSerialization:
    @staticmethod
    def _result():
        return explore(
            choice("options.frame_rate", [30.0, 1e7]),
            build_fig5_design,
            objectives=("energy_per_frame", "power_density", "latency"))

    def test_json_round_trip_bit_identical(self):
        """Acceptance: the full result re-serializes bit-identically."""
        result = self._result()
        document = result.to_json()
        again = ExplorationResult.from_json(document)
        assert again.to_json() == document

    def test_round_trip_preserves_analysis(self):
        result = self._result()
        again = ExplorationResult.from_json(result.to_json())
        assert again.frontier_indices() == result.frontier_indices()
        assert again.dominance_ranks() == result.dominance_ranks()
        assert [p.feasible for p in again.points] \
            == [p.feasible for p in result.points]
        assert again.points[1].failure_type == "TimingError"

    def test_schema_tag_present_and_checked(self):
        payload = self._result().to_dict()
        assert payload["schema"] == "repro.explore/1"
        payload["schema"] = "repro.explore/999"
        with pytest.raises(SerializationError):
            ExplorationResult.from_dict(payload)

    def test_save_load(self, tmp_path):
        result = self._result()
        path = tmp_path / "exploration.json"
        result.save(path)
        assert ExplorationResult.load(path).to_json() == result.to_json()

    def test_deserialized_metrics_reattach_extractors(self):
        again = ExplorationResult.from_json(self._result().to_json())
        design = build_fig5_design()
        report = Simulator().run(design).report
        value = again.objectives[0].value(design, report)
        assert value == pytest.approx(report.total_energy)

    def test_infeasible_round_trip_keeps_failure(self):
        again = ExplorationResult.from_json(self._result().to_json())
        bad = again.points[1]
        assert not bad.feasible
        assert bad.metrics == {}
        assert "re-design" in bad.failure

    def test_to_table_marks_frontier_and_infeasible(self):
        table = self._result().to_table()
        assert "infeasible" in table
        assert "*" in table
        assert "rank" in table


class TestSpec:
    SPEC = {
        "schema": "repro.explore-spec/1",
        "usecase": "edgaze",
        "space": {"product": [
            {"name": "placement", "values": ["2D-In", "2D-Off"]},
            {"name": "cis_node", "values": [130, 65]},
        ]},
        "objectives": ["energy_per_frame", "power_density", "latency"],
        "options": {"frame_rate": 30.0},
    }

    def test_spec_runs(self):
        spec = exploration_spec_from_dict(self.SPEC)
        result = spec.run()
        assert len(result.points) == 4
        assert all(point.feasible for point in result.points)
        assert result.to_dict()["schema"] == "repro.explore/1"

    def test_spec_round_trip(self):
        spec = exploration_spec_from_dict(self.SPEC)
        assert exploration_spec_from_dict(spec.to_dict()).to_dict() \
            == spec.to_dict()

    def test_missing_pieces_rejected(self):
        for broken in ({"usecase": "edgaze"},
                       {"space": self.SPEC["space"]},
                       {**self.SPEC, "schema": "bogus/1"},
                       {**self.SPEC, "objectives": []},
                       {**self.SPEC, "objectives": "energy_per_frame"},
                       {**self.SPEC, "surprise": 1}):
            with pytest.raises(SerializationError):
                exploration_spec_from_dict(broken)


class TestCliExplore:
    def _write(self, tmp_path, payload):
        path = tmp_path / "explore.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_explore_command(self, tmp_path, capsys):
        """Acceptance: repro explore runs a 2-axis, 3-objective space."""
        from repro.__main__ import main

        spec = self._write(tmp_path, TestSpec.SPEC)
        assert main(["explore", spec]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "objectives:" in out

    def test_explore_command_json(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self._write(tmp_path, TestSpec.SPEC)
        assert main(["explore", spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.explore/1"
        assert len(payload["points"]) == 4
        assert len(payload["objectives"]) == 3
        assert payload["frontier"]

    def test_explore_writes_result_file(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self._write(tmp_path, TestSpec.SPEC)
        out_path = tmp_path / "result.json"
        assert main(["explore", spec, "-o", str(out_path)]) == 0
        saved = ExplorationResult.load(out_path)
        assert len(saved.points) == 4

    def test_explore_all_infeasible_exits_nonzero(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self._write(tmp_path, {
            "usecase": "fig5",
            "space": [{"name": "options.frame_rate", "values": [1e7]}],
            "objectives": ["energy_per_frame"],
        })
        assert main(["explore", spec]) == 1
        assert "TimingError" in capsys.readouterr().out

    def test_explore_missing_spec_fails_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["explore", str(tmp_path / "absent.json")]) == 1
        assert "cannot load spec" in capsys.readouterr().err


class TestShims:
    def test_sweep_parameter_non_numeric_values(self):
        """Satellite: generic sweeps accept non-numeric parameters."""
        from repro.analysis import sweep_parameter
        from repro.usecases import UseCaseConfig, build_edgaze

        points = sweep_parameter(
            lambda placement: build_edgaze(UseCaseConfig(placement, 65)),
            ["2D-In", "3D-In", "3D-In-STT"])
        assert [p.parameter for p in points] \
            == ["2D-In", "3D-In", "3D-In-STT"]
        assert all(p.feasible for p in points)

    def test_design_point_tie_semantics(self):
        from repro.analysis.pareto import DesignPoint

        a = DesignPoint("a", 1.0, 1.0)
        twin = DesignPoint("twin", 1.0, 1.0)
        assert not a.dominates(twin) and not twin.dominates(a)
        nan = DesignPoint("n", float("nan"), 1.0)
        assert not nan.dominates(a) and not a.dominates(nan)

    def test_pareto_front_deterministic_with_duplicates(self):
        from repro.analysis.pareto import (DesignPoint, dominated_points,
                                           pareto_front)

        points = [DesignPoint("b", 1.0, 2.0), DesignPoint("a", 1.0, 2.0),
                  DesignPoint("c", 2.0, 1.0), DesignPoint("d", 3.0, 3.0)]
        front = pareto_front(points)
        assert [p.label for p in front] == ["a", "b", "c"]
        assert [p.label for p in pareto_front(points[::-1])] \
            == ["a", "b", "c"]
        assert [p.label for p in dominated_points(points)] == ["d"]

    def test_nan_design_points_neither_front_nor_dominated(self):
        from repro.analysis.pareto import (DesignPoint, dominated_points,
                                           pareto_front)

        points = [DesignPoint("a", 1.0, 2.0),
                  DesignPoint("n", float("nan"), 1.0)]
        assert [p.label for p in pareto_front(points)] == ["a"]
        assert dominated_points(points) == []

    def test_usecase_spaces_match_config_grids(self):
        from repro.usecases import (edgaze_configs, edgaze_space,
                                    rhythmic_configs, rhythmic_space)

        assert [(c.placement, c.cis_node) for c in edgaze_configs()] \
            == [(p["placement"], p["cis_node"]) for p in edgaze_space()]
        assert [(c.placement, c.cis_node) for c in rhythmic_configs()] \
            == [(p["placement"], p["cis_node"]) for p in rhythmic_space()]

    def test_bottleneck_shim_path(self):
        from repro.analysis.bottleneck import (Bottleneck,
                                               identify_bottlenecks)
        from repro.explore.annotate import Bottleneck as Moved

        assert Bottleneck is Moved
        assert callable(identify_bottlenecks)
