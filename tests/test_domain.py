"""Tests for signal-domain compatibility rules."""

import pytest

from repro.hw.analog.domain import SignalDomain, compatible, requires_adc


class TestSignalDomain:
    def test_digital_is_not_analog(self):
        assert not SignalDomain.DIGITAL.is_analog

    def test_all_others_are_analog(self):
        for domain in SignalDomain:
            if domain is not SignalDomain.DIGITAL:
                assert domain.is_analog


class TestCompatibility:
    def test_identical_domains_compatible(self):
        for domain in SignalDomain:
            assert compatible(domain, domain)

    def test_charge_to_voltage_implicit(self):
        """Footnote 1: the consumer's input cap converts Q->V for free."""
        assert compatible(SignalDomain.CHARGE, SignalDomain.VOLTAGE)

    def test_voltage_to_charge_needs_converter(self):
        assert not compatible(SignalDomain.VOLTAGE, SignalDomain.CHARGE)

    def test_voltage_to_current_needs_converter(self):
        assert not compatible(SignalDomain.VOLTAGE, SignalDomain.CURRENT)

    def test_analog_to_digital_needs_adc(self):
        assert not compatible(SignalDomain.VOLTAGE, SignalDomain.DIGITAL)


class TestRequiresAdc:
    def test_voltage_to_digital(self):
        assert requires_adc(SignalDomain.VOLTAGE, SignalDomain.DIGITAL)

    def test_time_to_digital(self):
        assert requires_adc(SignalDomain.TIME, SignalDomain.DIGITAL)

    def test_digital_to_digital(self):
        assert not requires_adc(SignalDomain.DIGITAL, SignalDomain.DIGITAL)

    def test_analog_to_analog(self):
        assert not requires_adc(SignalDomain.VOLTAGE, SignalDomain.CURRENT)
