"""Per-chip structural tests: each Table 2 model matches its row."""

import pytest

from repro import units
from repro.hw.analog.domain import SignalDomain
from repro.validation import chip_by_name


def _system(name):
    _, system, _ = chip_by_name(name).build()
    return system


class TestISSCC17:
    def test_3t_aps_with_sharing(self):
        system = _system("ISSCC'17")
        pixels = system.find_unit("PixelArray")
        aps = pixels.components[0][0]
        cell_names = [u.cell.name for u in aps.cell_usages]
        assert "FD" not in cell_names  # 3T pixel

    def test_has_analog_memory(self):
        system = _system("ISSCC'17")
        haar = system.find_unit("HaarMemory")
        assert haar.category == "memory"
        assert haar.num_components == 20 * 80  # Table 2: 20x80

    def test_160kb_digital_memory(self):
        system = _system("ISSCC'17")
        buffer = system.find_unit("FeatureSRAM")
        assert buffer.capacity_pixels == 160 * 1024

    def test_runs_at_1fps(self):
        assert chip_by_name("ISSCC'17").frame_rate == 1


class TestJSSC19:
    def test_4t_aps_with_cds(self):
        system = _system("JSSC'19")
        aps = system.find_unit("PixelArray").components[0][0]
        cell_names = [u.cell.name for u in aps.cell_usages]
        assert "FD" in cell_names
        sf = [u for u in aps.cell_usages if u.cell.name == "SF"][0]
        assert sf.temporal == 2  # CDS

    def test_4x240_analog_memory(self):
        system = _system("JSSC'19")
        memory = system.find_unit("RowMemory")
        assert memory.num_components == 4 * 240

    def test_low_bit_readout(self):
        system = _system("JSSC'19")
        adc = system.find_unit("ADCArray").components[0][0]
        assert adc.cell_usages[0].cell.bits == 3  # 2.75-bit readout


class TestISSCC21:
    def test_stacked_65_22(self):
        system = _system("ISSCC'21")
        assert system.is_stacked
        nodes = {layer.name: layer.node_nm
                 for layer in system.layers.values()}
        assert nodes["sensor"] == 65
        assert nodes["compute"] == 22

    def test_12mpixel_array(self):
        chip = chip_by_name("ISSCC'21")
        assert chip.num_pixels == 3040 * 4056

    def test_8mb_memory(self):
        system = _system("ISSCC'21")
        frame = system.find_unit("FrameSRAM")
        assert frame.capacity_bytes == 8 * units.MB

    def test_2304_macs(self):
        system = _system("ISSCC'21")
        dnn = system.find_unit("DNNProcessor")
        rows, cols = dnn.dimensions
        assert rows * cols == 2304


class TestPWMChips:
    @pytest.mark.parametrize("name", ["JSSC'21-I", "ISSCC'22"])
    def test_pwm_pixels_output_time_domain(self, name):
        system = _system(name)
        pixels = [a for a in system.analog_arrays if "Pixel" in a.name][0]
        assert pixels.output_domain is SignalDomain.TIME

    @pytest.mark.parametrize("name", ["JSSC'21-I", "ISSCC'22"])
    def test_180nm_node(self, name):
        assert chip_by_name(name).process_node == "180 nm"


class TestVLSI21:
    def test_dps_has_per_pixel_adc(self):
        system = _system("VLSI'21")
        dps = system.find_unit("DPSArray").components[0][0]
        cell_names = [u.cell.name for u in dps.cell_usages]
        assert "ADC" in cell_names
        assert dps.output_domain is SignalDomain.DIGITAL

    def test_2mpixel_global_shutter_rate(self):
        chip = chip_by_name("VLSI'21")
        assert chip.num_pixels == 1200 * 1600
        assert chip.frame_rate == 480

    def test_6mb_memory_on_logic_layer(self):
        system = _system("VLSI'21")
        frame = system.find_unit("FrameSRAM")
        assert frame.capacity_bytes == 6 * units.MB
        assert frame.layer == "compute"


class TestTCAS22:
    def test_binary_first_layer(self):
        _, system, mapping = chip_by_name("TCAS-I'22").build()
        macs = system.find_unit("CurrentMACArray")
        assert macs.components[0][0].input_domain is SignalDomain.VOLTAGE

    def test_tiny_always_on_array(self):
        assert chip_by_name("TCAS-I'22").num_pixels == 32 * 32


class TestJSSC21II:
    def test_charge_domain_compressive_mac(self):
        system = _system("JSSC'21-II")
        macs = system.find_unit("CSMACArray")
        mac = macs.components[0][0]
        assert mac.input_volume == 4  # 4x compressive sensing

    def test_vga_array(self):
        assert chip_by_name("JSSC'21-II").num_pixels == 480 * 640


class TestSensors20:
    def test_column_parallel_mac_and_pool(self):
        system = _system("Sensors'20")
        assert system.find_unit("ConvMACArray").num_components == 128
        pools = system.find_unit("MaxPoolArray")
        assert pools.components[0][0].input_volume == 4  # 2x2 max pool
