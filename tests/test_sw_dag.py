"""Tests for the stage DAG validation (the 'well-formed dependencies' check)."""

import pytest

from repro.exceptions import DAGError
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage


def _chain():
    source = PixelInput((32, 32, 1), name="Input")
    binning = ProcessStage("Bin", input_size=(32, 32, 1),
                           kernel=(2, 2, 1), stride=(2, 2, 1))
    edge = ProcessStage("Edge", input_size=(16, 16, 1),
                        kernel=(3, 3, 1), stride=(1, 1, 1), padding="same")
    binning.set_input_stage(source)
    edge.set_input_stage(binning)
    return [source, binning, edge]


class TestConstruction:
    def test_topological_order_respects_dependencies(self):
        graph = StageGraph(_chain())
        names = [s.name for s in graph.topological_order]
        assert names.index("Input") < names.index("Bin") < names.index("Edge")

    def test_sources_and_sinks(self):
        graph = StageGraph(_chain())
        assert [s.name for s in graph.sources] == ["Input"]
        assert [s.name for s in graph.sinks] == ["Edge"]

    def test_len_and_contains(self):
        graph = StageGraph(_chain())
        assert len(graph) == 3
        assert "Bin" in graph
        assert "Nope" not in graph

    def test_get_unknown_stage(self):
        graph = StageGraph(_chain())
        with pytest.raises(DAGError):
            graph.get("Nope")

    def test_consumers(self):
        graph = StageGraph(_chain())
        source = graph.get("Input")
        assert [s.name for s in graph.consumers(source)] == ["Bin"]

    def test_edges(self):
        graph = StageGraph(_chain())
        edges = {(p.name, c.name) for p, c in graph.edges()}
        assert edges == {("Input", "Bin"), ("Bin", "Edge")}


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(DAGError):
            StageGraph([])

    def test_duplicate_names_rejected(self):
        a = PixelInput((8, 8, 1), name="X")
        b = PixelInput((8, 8, 1), name="X")
        with pytest.raises(DAGError, match="duplicate"):
            StageGraph([a, b])

    def test_cycle_detected(self):
        source = PixelInput((8, 8, 1), name="Input")
        a = ProcessStage("A", input_size=(8, 8, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1))
        b = ProcessStage("B", input_size=(8, 8, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1))
        a.set_input_stage(source)
        a.set_input_stage(b)
        b.set_input_stage(a)
        with pytest.raises(DAGError, match="cycle"):
            StageGraph([source, a, b])

    def test_missing_producer_rejected(self):
        source = PixelInput((8, 8, 1), name="Input")
        stage = ProcessStage("A", input_size=(8, 8, 1), kernel=(1, 1, 1),
                             stride=(1, 1, 1))
        stage.set_input_stage(source)
        with pytest.raises(DAGError, match="not part of the graph"):
            StageGraph([stage])

    def test_shape_mismatch_rejected(self):
        source = PixelInput((8, 8, 1), name="Input")
        stage = ProcessStage("A", input_size=(16, 16, 1), kernel=(1, 1, 1),
                             stride=(1, 1, 1))
        stage.set_input_stage(source)
        with pytest.raises(DAGError, match="expects input"):
            StageGraph([source, stage])

    def test_pixel_input_required(self):
        stage = ProcessStage("A", input_size=(8, 8, 1), kernel=(1, 1, 1),
                             stride=(1, 1, 1))
        with pytest.raises(DAGError, match="PixelInput"):
            StageGraph([stage])

    def test_multi_input_stage(self):
        """Frame subtraction consumes two producers of identical shape."""
        source = PixelInput((8, 8, 1), name="Input")
        down_a = ProcessStage("A", input_size=(8, 8, 1), kernel=(1, 1, 1),
                              stride=(1, 1, 1))
        down_b = ProcessStage("B", input_size=(8, 8, 1), kernel=(1, 1, 1),
                              stride=(1, 1, 1))
        sub = ProcessStage("Sub", input_size=(8, 8, 1), kernel=(1, 1, 1),
                           stride=(1, 1, 1))
        down_a.set_input_stage(source)
        down_b.set_input_stage(source)
        sub.set_input_stage(down_a)
        sub.set_input_stage(down_b)
        graph = StageGraph([source, down_a, down_b, sub])
        assert [s.name for s in graph.sinks] == ["Sub"]
