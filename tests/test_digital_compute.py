"""Tests for digital compute units (Eq. 15 inputs)."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import FIFO


def _unit(**kwargs):
    defaults = dict(input_pixels_per_cycle=(1, 3),
                    output_pixels_per_cycle=(1, 1),
                    energy_per_cycle=2 * units.pJ,
                    num_stages=2)
    defaults.update(kwargs)
    return ComputeUnit("PE", **defaults)


class TestComputeUnit:
    def test_throughputs(self):
        unit = _unit()
        assert unit.input_throughput == 3
        assert unit.output_throughput == 1

    def test_multi_input_shapes(self):
        unit = _unit(input_pixels_per_cycle=[(1, 1), (2, 2)])
        assert unit.input_throughput == 5
        assert len(unit.input_pixels_per_cycle) == 2

    def test_active_cycles_include_pipeline_fill(self):
        unit = _unit(num_stages=4)
        assert unit.active_cycles(100) == pytest.approx(100 + 3)

    def test_zero_output_means_zero_cycles(self):
        assert _unit().active_cycles(0) == 0.0

    def test_compute_energy(self):
        unit = _unit()
        assert unit.compute_energy(99) == pytest.approx(
            (99 + 1) * 2 * units.pJ)

    def test_cycle_time_from_clock(self):
        unit = _unit(clock_hz=200 * units.MHz)
        assert unit.cycle_time == pytest.approx(5e-9)

    def test_wiring(self):
        unit = _unit()
        fifo = FIFO("F", size=(1, 8), write_energy_per_word=0,
                    read_energy_per_word=0)
        unit.set_input(fifo).set_output(fifo)
        assert unit.input_memories == [fifo]
        assert unit.output_memory is fifo

    def test_double_output_rejected(self):
        unit = _unit()
        fifo = FIFO("F", size=(1, 8), write_energy_per_word=0,
                    read_energy_per_word=0)
        unit.set_output(fifo)
        with pytest.raises(ConfigurationError):
            unit.set_output(fifo)

    def test_sink_flag(self):
        unit = _unit()
        assert not unit.is_sink
        unit.set_sink()
        assert unit.is_sink

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            _unit(energy_per_cycle=-1.0)
        with pytest.raises(ConfigurationError):
            _unit(num_stages=0)
        with pytest.raises(ConfigurationError):
            _unit(clock_hz=0)
        with pytest.raises(ConfigurationError):
            _unit(output_pixels_per_cycle=(0, 1))


class TestSystolicArray:
    def test_macs_per_cycle(self):
        array = SystolicArray("SA", dimensions=(16, 16),
                              energy_per_mac=1 * units.pJ, utilization=1.0)
        assert array.macs_per_cycle == pytest.approx(256)

    def test_cycles_for_macs_includes_fill(self):
        array = SystolicArray("SA", dimensions=(4, 4),
                              energy_per_mac=1 * units.pJ, utilization=1.0,
                              num_stages=2)
        # fill = rows + cols + stages - 2 = 8
        assert array.cycles_for_macs(160) == pytest.approx(10 + 8)

    def test_zero_macs_zero_cycles(self):
        array = SystolicArray("SA", dimensions=(4, 4), energy_per_mac=1e-12)
        assert array.cycles_for_macs(0) == 0.0

    def test_energy_for_macs_linear(self):
        array = SystolicArray("SA", dimensions=(8, 8),
                              energy_per_mac=2 * units.pJ)
        assert array.energy_for_macs(1000) == pytest.approx(
            1000 * 2 * units.pJ)

    def test_utilization_bounds(self):
        with pytest.raises(ConfigurationError):
            SystolicArray("SA", dimensions=(4, 4), energy_per_mac=1e-12,
                          utilization=0.0)
        with pytest.raises(ConfigurationError):
            SystolicArray("SA", dimensions=(4, 4), energy_per_mac=1e-12,
                          utilization=1.5)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            SystolicArray("SA", dimensions=(0, 4), energy_per_mac=1e-12)
        with pytest.raises(ConfigurationError):
            SystolicArray("SA", dimensions=(4,), energy_per_mac=1e-12)

    def test_negative_macs_rejected(self):
        array = SystolicArray("SA", dimensions=(4, 4), energy_per_mac=1e-12)
        with pytest.raises(ConfigurationError):
            array.cycles_for_macs(-1)
