"""Scenario tests: diverse pipeline topologies through simulate()."""

import pytest

from repro import (
    ActivePixelSensor,
    AnalogArray,
    AnalogMAC,
    ColumnADC,
    ComputeUnit,
    FIFO,
    Layer,
    PixelInput,
    ProcessStage,
    SENSOR_LAYER,
    SensorSystem,
    simulate,
    units,
)
from repro.energy.report import Category
from repro.exceptions import StallError
from repro.sim.cycle_sim import cycle_accurate_latency
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph


def _front_end(system, rows=16, cols=16):
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (rows, cols))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(bits=8), (1, cols))
    pixels.set_output(adcs)
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    return pixels, adcs


def _fifo(name, size=1024, ports=8):
    return FIFO(name, size=(1, size),
                write_energy_per_word=0.2 * units.pJ,
                read_energy_per_word=0.2 * units.pJ,
                num_read_ports=ports, num_write_ports=ports)


class TestBranchingDag:
    def test_one_producer_two_consumers(self):
        """A source feeding two parallel digital branches, both sinks."""
        source = PixelInput((16, 16, 1), name="Input")
        left = ProcessStage("Left", input_size=(16, 16, 1),
                            kernel=(1, 1, 1), stride=(1, 1, 1))
        right = ProcessStage("Right", input_size=(16, 16, 1),
                             kernel=(2, 2, 1), stride=(2, 2, 1))
        left.set_input_stage(source)
        right.set_input_stage(source)

        system = SensorSystem("Branch", layers=[Layer(SENSOR_LAYER, 65)])
        _, adcs = _front_end(system)
        fifo = _fifo("SharedFifo")
        adcs.set_output(fifo)
        left_pe = ComputeUnit("LeftPE", input_pixels_per_cycle=(1, 1),
                              output_pixels_per_cycle=(1, 1),
                              energy_per_cycle=1 * units.pJ)
        right_pe = ComputeUnit("RightPE", input_pixels_per_cycle=(2, 2),
                               output_pixels_per_cycle=(1, 1),
                               energy_per_cycle=2 * units.pJ)
        left_pe.set_input(fifo)
        left_pe.set_sink()
        right_pe.set_input(fifo)
        right_pe.set_sink()
        system.add_memory(fifo)
        system.add_compute_unit(left_pe)
        system.add_compute_unit(right_pe)
        system.set_pixel_array_geometry(16, 16)

        report = simulate([source, left, right], system,
                          {"Input": "Pixels", "Left": "LeftPE",
                           "Right": "RightPE"}, frame_rate=30)
        # Both sinks ship results off-chip.
        mipi_entries = [e for e in report.entries
                        if e.category is Category.MIPI]
        assert len(mipi_entries) == 2
        assert report.total_energy > 0

    def test_two_analog_branches(self):
        """The pixel array feeding two distinct analog PE arrays."""
        source = PixelInput((16, 16, 1), name="Input")
        conv_a = ProcessStage("ConvA", input_size=(16, 16, 1),
                              kernel=(3, 3, 1), stride=(1, 1, 1),
                              padding="same")
        conv_b = ProcessStage("ConvB", input_size=(16, 16, 1),
                              kernel=(2, 2, 1), stride=(2, 2, 1))
        conv_a.set_input_stage(source)
        conv_b.set_input_stage(source)

        system = SensorSystem("Fork", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (16, 16))
        macs_a = AnalogArray("MACsA")
        macs_a.add_component(AnalogMAC("MacA", kernel_volume=9), (1, 16))
        macs_b = AnalogArray("MACsB")
        macs_b.add_component(AnalogMAC("MacB", kernel_volume=4), (1, 16))
        pixels.set_output(macs_a)
        pixels.set_output(macs_b)
        system.add_analog_array(pixels)
        system.add_analog_array(macs_a)
        system.add_analog_array(macs_b)
        system.set_pixel_array_geometry(16, 16)

        report = simulate([source, conv_a, conv_b], system,
                          {"Input": "Pixels", "ConvA": "MACsA",
                           "ConvB": "MACsB"}, frame_rate=30)
        components = report.by_component()
        assert components["MACsA/MacA"] > 0
        assert components["MACsB/MacB"] > 0


class TestAnalogOnlyPipelines:
    def test_pure_imaging_sensor(self):
        """No compute at all: SEN + MIPI only."""
        source = PixelInput((64, 64, 1), name="Input")
        system = SensorSystem("Imager", layers=[Layer(SENSOR_LAYER, 110)])
        _front_end(system, 64, 64)
        system.set_pixel_array_geometry(64, 64)
        report = simulate([source], system, {"Input": "Pixels"},
                          frame_rate=30)
        rollup = report.by_category()
        assert set(rollup) == {Category.SEN, Category.MIPI}
        assert report.digital_latency == 0.0

    def test_high_fps_pushes_serial_adc_above_fom_corner(self):
        """A single chip-level ADC crosses the Walden corner as FPS grows:
        64x64 pixels through one converter at 30 FPS is ~0.4 MS/s (flat
        FoM region) but at 30 kFPS it is ~0.4 GS/s (degraded FoM)."""
        def run(fps):
            source = PixelInput((64, 64, 1), name="Input")
            system = SensorSystem("Imager",
                                  layers=[Layer(SENSOR_LAYER, 110)])
            pixels = AnalogArray("Pixels")
            pixels.add_component(ActivePixelSensor(), (64, 64))
            adcs = AnalogArray("ADCs")
            adcs.add_component(ColumnADC(bits=8), (1, 1))  # chip-serial
            pixels.set_output(adcs)
            system.add_analog_array(pixels)
            system.add_analog_array(adcs)
            system.set_pixel_array_geometry(64, 64)
            return simulate([source], system, {"Input": "Pixels"},
                            frame_rate=fps)

        slow = run(30)
        fast = run(30000)
        assert fast.category_energy(Category.SEN) \
            > 1.5 * slow.category_energy(Category.SEN)


class TestCycleAccurateStalls:
    def test_deadlock_detected(self):
        """A consumer that can never fill its input window deadlocks."""
        source = PixelInput((16, 16, 1), name="Input")
        stage_a = ProcessStage("A", input_size=(16, 16, 1),
                               kernel=(1, 1, 1), stride=(1, 1, 1))
        stage_b = ProcessStage("B", input_size=(16, 16, 1),
                               kernel=(1, 1, 1), stride=(1, 1, 1))
        stage_a.set_input_stage(source)
        stage_b.set_input_stage(stage_a)

        system = SensorSystem("Deadlock", layers=[Layer(SENSOR_LAYER, 65)])
        _, adcs = _front_end(system)
        in_fifo = _fifo("InFifo")
        adcs.set_output(in_fifo)
        # The mid buffer is smaller than what B needs per cycle.
        mid = _fifo("Mid", size=2, ports=8)
        pe_a = ComputeUnit("PEA", input_pixels_per_cycle=(1, 1),
                           output_pixels_per_cycle=(1, 1),
                           energy_per_cycle=1e-12)
        pe_b = ComputeUnit("PEB", input_pixels_per_cycle=(1, 4),
                           output_pixels_per_cycle=(1, 1),
                           energy_per_cycle=1e-12)
        pe_a.set_input(in_fifo).set_output(mid)
        pe_b.set_input(mid)
        pe_b.set_sink()
        system.add_memory(in_fifo)
        system.add_memory(mid)
        system.add_compute_unit(pe_a)
        system.add_compute_unit(pe_b)

        graph = StageGraph([source, stage_a, stage_b])
        mapping = Mapping({"Input": "Pixels", "A": "PEA", "B": "PEB"})
        with pytest.raises(StallError, match="deadlock"):
            cycle_accurate_latency(graph, system, mapping)


class TestIntermediateCompression:
    def test_compressed_intermediate_cuts_crossing_bytes(self):
        """An encoder before the MIPI hop shrinks the crossing volume."""
        def run(compression):
            source = PixelInput((32, 32, 1), name="Input")
            encode = ProcessStage("Encode", input_size=(32, 32, 1),
                                  kernel=(1, 1, 1), stride=(1, 1, 1),
                                  output_compression=compression)
            encode.set_input_stage(source)
            system = SensorSystem("Enc", layers=[Layer(SENSOR_LAYER, 65)])
            system.add_offchip_host(22)
            _, adcs = _front_end(system, 32, 32)
            fifo = _fifo("F")
            adcs.set_output(fifo)
            pe = ComputeUnit("EncPE", input_pixels_per_cycle=(1, 1),
                             output_pixels_per_cycle=(1, 1),
                             energy_per_cycle=1e-12)
            pe.set_input(fifo)
            pe.set_sink()
            system.add_memory(fifo)
            system.add_compute_unit(pe)
            system.set_pixel_array_geometry(32, 32)
            report = simulate([source, encode], system,
                              {"Input": "Pixels", "Encode": "EncPE"},
                              frame_rate=30)
            return report.category_energy(Category.MIPI)

        assert run(0.25) == pytest.approx(0.25 * run(1.0))


class TestHardwareReuseAnalog:
    def test_two_stages_one_mac_array(self):
        """Mapping two conv stages onto one analog PE array sums ops."""
        source = PixelInput((16, 16, 1), name="Input")
        conv1 = ProcessStage("Conv1", input_size=(16, 16, 1),
                             kernel=(3, 3, 1), stride=(1, 1, 1),
                             padding="same")
        conv2 = ProcessStage("Conv2", input_size=(16, 16, 1),
                             kernel=(3, 3, 1), stride=(1, 1, 1),
                             padding="same")
        conv1.set_input_stage(source)
        conv2.set_input_stage(conv1)

        def build(two_stages):
            system = SensorSystem("Reuse",
                                  layers=[Layer(SENSOR_LAYER, 65)])
            pixels = AnalogArray("Pixels")
            pixels.add_component(ActivePixelSensor(), (16, 16))
            macs = AnalogArray("MACs")
            macs.add_component(AnalogMAC(kernel_volume=9), (1, 16))
            pixels.set_output(macs)
            macs.set_output(macs_sink := AnalogArray("OutADC"))
            macs_sink.add_component(ColumnADC(bits=8), (1, 16))
            system.add_analog_array(pixels)
            system.add_analog_array(macs)
            system.add_analog_array(macs_sink)
            system.set_pixel_array_geometry(16, 16)
            stages = [source, conv1, conv2] if two_stages \
                else [source, conv1]
            mapping = {"Input": "Pixels", "Conv1": "MACs"}
            if two_stages:
                mapping["Conv2"] = "MACs"
            return stages, system, mapping

        single = simulate(*build(False), frame_rate=30)
        double = simulate(*build(True), frame_rate=30)
        mac_single = single.by_component()["MACs/AnalogMAC"]
        mac_double = double.by_component()["MACs/AnalogMAC"]
        # Twice the ops through the same array: energy roughly doubles
        # (not exactly — per-access delay halves, but the MAC's dynamic
        # cells dominate and are delay-independent).
        assert mac_double == pytest.approx(2 * mac_single, rel=0.2)
