"""Tests for unit constants and physical helpers."""

import math

import pytest

from repro import units
from repro.units import (
    capacitance_for_resolution,
    format_energy,
    format_power,
    format_time,
    thermal_noise_voltage,
)


class TestConstants:
    def test_energy_prefixes_scale_by_thousands(self):
        assert units.mJ == pytest.approx(units.J / 1e3)
        assert units.pJ == pytest.approx(units.nJ / 1e3)
        assert units.fJ == pytest.approx(units.pJ / 1e3)

    def test_capacitance_prefixes(self):
        assert units.fF == pytest.approx(1e-15)
        assert units.pF == pytest.approx(1e-12)

    def test_frequency_prefixes(self):
        assert units.GHz == pytest.approx(1e9)
        assert units.MHz == pytest.approx(1e6)

    def test_data_prefixes_are_binary(self):
        assert units.KB == 1024
        assert units.MB == 1024 ** 2

    def test_area_units(self):
        assert units.mm2 == pytest.approx(1e-6)
        assert units.um2 == pytest.approx(1e-12)

    def test_boltzmann_constant(self):
        assert units.BOLTZMANN == pytest.approx(1.380649e-23)


class TestFormatting:
    def test_format_energy_picks_natural_prefix(self):
        assert format_energy(3.2e-12) == "3.2 pJ"
        assert format_energy(1.5e-9) == "1.5 nJ"
        assert format_energy(2.0) == "2 J"

    def test_format_energy_zero(self):
        assert "0" in format_energy(0.0)

    def test_format_energy_below_smallest_prefix(self):
        text = format_energy(1e-20)
        assert "aJ" in text

    def test_format_power(self):
        assert format_power(1.3e-3) == "1.3 mW"

    def test_format_time(self):
        assert format_time(16.7e-3) == "16.7 ms"


class TestThermalNoise:
    def test_kt_over_c_at_room_temperature(self):
        capacitance = 1e-12  # 1 pF
        expected = math.sqrt(1.380649e-23 * 300.0 / capacitance)
        assert thermal_noise_voltage(capacitance) == pytest.approx(expected)

    def test_larger_capacitor_means_less_noise(self):
        assert (thermal_noise_voltage(10 * units.fF)
                > thermal_noise_voltage(100 * units.fF))

    def test_rejects_non_positive_capacitance(self):
        with pytest.raises(ValueError):
            thermal_noise_voltage(0.0)


class TestCapacitanceForResolution:
    def test_eq6_formula(self):
        """3*sigma < LSB/2 with LSB = Vswing / 2**bits (Eq. 6 as printed)."""
        c = capacitance_for_resolution(1.0, 8)
        sigma = thermal_noise_voltage(c)
        lsb = 1.0 / 2 ** 8
        assert 3 * sigma == pytest.approx(lsb / 2)

    def test_more_bits_need_more_capacitance(self):
        assert (capacitance_for_resolution(1.0, 10)
                > capacitance_for_resolution(1.0, 8))

    def test_quadratic_in_resolution(self):
        """One extra bit quadruples the required capacitance."""
        c8 = capacitance_for_resolution(1.0, 8)
        c9 = capacitance_for_resolution(1.0, 9)
        assert c9 / c8 == pytest.approx(4.0)

    def test_smaller_swing_needs_more_capacitance(self):
        assert (capacitance_for_resolution(0.5, 8)
                > capacitance_for_resolution(1.0, 8))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            capacitance_for_resolution(0.0, 8)
        with pytest.raises(ValueError):
            capacitance_for_resolution(1.0, 0)
