"""Tests for the execution backend subsystem: the executor registry,
backend equivalence, the lease-based work queue, and the distributed
executor (local fallback, dispatch endpoints, worker crash recovery)."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import SimOptions, Simulator
from repro.exceptions import ConfigurationError
from repro.exec import (
    InlineExecutor,
    ProcessExecutor,
    SimulationExecutor,
    ThreadExecutor,
    available_executors,
    create_executor,
    register_executor,
    resolve_executor,
)
from repro.exec.distributed import DistributedExecutor
from repro.exec.queue import WorkQueue
from repro.resilience import QUARANTINE_THRESHOLD
from repro.serve import BackgroundServer
from repro.usecases.fig5 import build_fig5_design

REPO_ROOT = Path(__file__).resolve().parent.parent


def _sweep_items(rates):
    design = build_fig5_design()
    return [(design, SimOptions(frame_rate=float(rate)))
            for rate in rates]


# --- the executor registry --------------------------------------------------

class TestExecutorRegistry:
    def test_builtin_backends_are_registered(self):
        assert {"inline", "thread", "process"} <= set(
            available_executors())

    def test_create_by_name(self):
        assert isinstance(create_executor("inline"), InlineExecutor)
        assert isinstance(create_executor("thread"), ThreadExecutor)
        assert isinstance(create_executor("process"), ProcessExecutor)

    def test_unknown_executor_rejected_with_available_list(self):
        with pytest.raises(ConfigurationError) as excinfo:
            create_executor("quantum")
        assert "quantum" in str(excinfo.value)
        assert "thread" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_executor("thread", ThreadExecutor)

    def test_replace_allows_override(self):
        class _Custom(ThreadExecutor):
            name = "thread"

        register_executor("thread", _Custom, replace=True)
        try:
            assert isinstance(create_executor("thread"), _Custom)
        finally:
            register_executor("thread", ThreadExecutor, replace=True)

    def test_resolve_none_defaults_to_thread(self):
        assert resolve_executor(None).name == "thread"

    def test_resolve_honors_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "inline")
        assert resolve_executor(None).name == "inline"

    def test_resolve_instance_passthrough(self):
        executor = InlineExecutor()
        assert resolve_executor(executor) is executor

    def test_resolve_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(42)

    def test_simulator_accepts_instance(self):
        with Simulator(executor=InlineExecutor(), cache=False) as session:
            assert session.pool_info()["executor"] == "inline"
            result = session.run(build_fig5_design())
        assert result.ok

    def test_simulator_env_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "inline")
        with Simulator(cache=False) as session:
            assert session.pool_info()["executor"] == "inline"

    def test_executor_info_describes_backend(self):
        with Simulator(executor="inline", cache=False) as session:
            doc = session.executor_info()
        assert doc == {"backend": "inline",
                       "requires_serializable": False}


# --- backend equivalence ----------------------------------------------------

class TestBackendEquivalence:
    def test_inline_thread_process_bit_identical(self):
        """The same batch through all three local backends, compared as
        serialized documents: the refactor must not perturb results."""
        items = _sweep_items([24.0, 30.0, 60.0])
        documents = {}
        for backend in ("inline", "thread", "process"):
            with Simulator(executor=backend, cache=False) as session:
                results = session.run_many(items)
            for result in results:
                assert result.ok, f"{backend}: {result.failure}"
            documents[backend] = [
                {key: value for key, value in result.to_dict().items()
                 if key != "elapsed_s"}  # wall clock is not a result
                for result in results]
        assert documents["inline"] == documents["thread"]
        assert documents["inline"] == documents["process"]

    def test_inline_runs_on_the_calling_thread(self):
        with Simulator(executor="inline", cache=False) as session:
            results = session.run_many(_sweep_items([31.0, 37.0]))
            stats = session.last_batch_stats
        assert all(result.ok for result in results)
        assert stats.workers_used == 1


# --- the lease-based work queue ---------------------------------------------

def _task(task_id, payload="x"):
    return {"task_id": task_id, "payload": payload, "attempt": 0}


class TestWorkQueue:
    def test_claim_complete_roundtrip(self):
        queue = WorkQueue(lease_ttl_s=30.0)
        queue.enqueue([_task("t1"), _task("t2")])
        grant = queue.register_worker({"pid": 123})
        assert grant["lease_ttl_s"] == 30.0
        worker = grant["worker_id"]
        tasks = queue.claim(worker, max_tasks=8)
        assert [task["task_id"] for task in tasks] == ["t1", "t2"]
        assert queue.outstanding_leases() == 2
        reply = queue.complete(worker, [
            {"task_id": "t1", "result": {"n": 1}},
            {"task_id": "t2", "result": {"n": 2}}])
        assert reply["accepted"] == 2
        outcomes = queue.collect(["t1", "t2"])
        assert outcomes["t1"] == {"state": "done", "worker": worker,
                                  "result": {"n": 1}}
        assert queue.outstanding_leases() == 0

    def test_duplicate_task_id_rejected(self):
        queue = WorkQueue(lease_ttl_s=30.0)
        queue.enqueue([_task("t1")])
        with pytest.raises(ConfigurationError):
            queue.enqueue([_task("t1")])

    def test_unknown_worker_raises_key_error(self):
        queue = WorkQueue(lease_ttl_s=30.0)
        with pytest.raises(KeyError):
            queue.claim("w99")
        with pytest.raises(KeyError):
            queue.heartbeat("w99")
        with pytest.raises(KeyError):
            queue.deregister_worker("w99")

    def test_expiry_strikes_and_redispatches_solo(self):
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1"), _task("t2")])
        worker = queue.register_worker()["worker_id"]
        queue.claim(worker, max_tasks=2)
        now = time.monotonic()
        assert queue.expire_leases(now=now) == 0  # not due yet
        assert queue.expire_leases(now=now + 11.0) == 2
        # Both re-enter the queue as solo suspects with a bumped
        # attempt, and the worker is marked lost.
        assert queue.live_workers() == 0
        second = queue.register_worker()["worker_id"]
        batch = queue.claim(second, max_tasks=8)
        assert len(batch) == 1  # solo suspects never share a batch
        assert batch[0]["attempt"] == 1

    def test_quarantine_after_threshold_strikes(self):
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1")])
        deadline = 0.0
        for strike in range(QUARANTINE_THRESHOLD):
            worker = queue.register_worker()["worker_id"]
            assert queue.claim(worker, max_tasks=1)
            deadline = time.monotonic() + 11.0 + strike
            assert queue.expire_leases(now=deadline) == 1
        outcome = queue.collect(["t1"])["t1"]
        assert outcome["state"] == "expired"
        assert outcome["strikes"] == QUARANTINE_THRESHOLD
        assert queue.describe()["quarantined_total"] == 1

    def test_graceful_deregister_releases_without_strikes(self):
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1")])
        worker = queue.register_worker()["worker_id"]
        queue.claim(worker, max_tasks=1)
        reply = queue.deregister_worker(worker)
        assert reply["released"] == 1
        second = queue.register_worker()["worker_id"]
        [task] = queue.claim(second, max_tasks=1)
        assert task["attempt"] == 0  # an orderly goodbye is no strike

    def test_stale_complete_after_expiry_is_dropped(self):
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1")])
        first = queue.register_worker()["worker_id"]
        queue.claim(first, max_tasks=1)
        queue.expire_leases(now=time.monotonic() + 11.0)
        second = queue.register_worker()["worker_id"]
        queue.claim(second, max_tasks=1)
        # The zombie first worker reports after losing its lease.
        reply = queue.complete(first, [
            {"task_id": "t1", "result": {"zombie": True}}])
        assert reply["accepted"] == 0 and reply["stale"] == 1
        reply = queue.complete(second, [
            {"task_id": "t1", "result": {"fresh": True}}])
        assert reply["accepted"] == 1
        assert queue.collect(["t1"])["t1"]["result"] == {"fresh": True}

    def test_heartbeat_renews_lease_deadlines(self, monkeypatch):
        import repro.exec.queue as queue_module

        class _Clock:
            now = 1000.0

            def monotonic(self):
                return self.now

        clock = _Clock()
        monkeypatch.setattr(queue_module, "time", clock)
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1")])
        worker = queue.register_worker()["worker_id"]
        queue.claim(worker, max_tasks=1)  # lease deadline: 1010
        clock.now = 1008.0
        assert queue.heartbeat(worker, ["t1"])["renewed"] == 1  # -> 1018
        assert queue.expire_leases(now=1011.0) == 0  # outlived original
        assert queue.expire_leases(now=1019.0) == 1

    def test_heartbeat_after_being_marked_lost_is_rejected(self):
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1")])
        worker = queue.register_worker()["worker_id"]
        queue.claim(worker, max_tasks=1)
        queue.expire_leases(now=time.monotonic() + 11.0)
        with pytest.raises(KeyError):
            queue.heartbeat(worker)  # the cue to re-register

    def test_env_knobs_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "6")
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "1.5")
        queue = WorkQueue()
        assert queue.lease_ttl_s == 6.0
        assert queue.heartbeat_s == 1.5
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "soon")
        with pytest.raises(ConfigurationError):
            WorkQueue()
        with pytest.raises(ConfigurationError):
            WorkQueue(lease_ttl_s=-1.0)
        with pytest.raises(ConfigurationError):
            WorkQueue(lease_ttl_s=1.0, heartbeat_s=2.0)

    def test_withdraw_skips_leased_tasks(self):
        queue = WorkQueue(lease_ttl_s=10.0)
        queue.enqueue([_task("t1"), _task("t2")])
        worker = queue.register_worker()["worker_id"]
        queue.claim(worker, max_tasks=1)  # t1 leased, t2 pending
        withdrawn = queue.withdraw(["t1", "t2"])
        assert [task["task_id"] for task in withdrawn] == ["t2"]
        assert queue.outstanding_leases() == 1


# --- the distributed executor -----------------------------------------------

class TestDistributedExecutor:
    def test_falls_back_locally_when_no_worker_ever_connects(self):
        queue = WorkQueue(lease_ttl_s=30.0)
        executor = DistributedExecutor(queue, fallback_after_s=0.2)
        items = _sweep_items([41.0, 43.0])
        started = time.monotonic()
        with Simulator(executor=executor, cache=False) as session:
            results = session.run_many(items)
        assert all(result.ok for result in results)
        assert time.monotonic() - started < 20.0
        assert queue.describe()["completed_total"] == 0  # ran locally

    def test_falls_back_when_the_fleet_goes_silent(self):
        queue = WorkQueue(lease_ttl_s=0.3, heartbeat_s=0.1)
        executor = DistributedExecutor(queue)
        queue.register_worker({"pid": 0})  # registers, never claims
        with Simulator(executor=executor, cache=False) as session:
            results = session.run_many(_sweep_items([47.0]))
        assert results[0].ok

    def test_remote_execution_through_dispatch_endpoints(self, tmp_path):
        """A real worker subprocess serves the batch over HTTP."""
        spec = {"schema": "repro.explore-spec/1", "usecase": "fig5",
                "engine": "object",
                "space": {"name": "options.frame_rate",
                          "values": [81.0, 83.0, 87.0, 89.0]},
                "objectives": ["energy_per_frame"]}
        cache = tmp_path / "cache"
        with BackgroundServer(dispatch=True, workers=1, chunk_size=4,
                              cache_dir=str(cache),
                              lease_ttl_s=30.0) as server:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", server.url, "--cache-dir", str(cache),
                 "--batch-size", "2"],
                cwd=REPO_ROOT, env=env)
            try:
                client = server.client()
                job = client.submit(spec)
                final = client.wait(job["id"], timeout=120.0)
                assert final["state"] == "done"
                stats = client.stats()
                dispatch = stats["dispatch"]
                assert dispatch["completed_total"] == 4
                assert dispatch["expired_total"] == 0
                [worker] = dispatch["workers"]
                assert worker["alive"] and worker["completed"] == 4
                assert stats["executor"]["backend"] == "distributed"
                points = client.result(job["id"])["result"]["points"]
                assert all(point["feasible"] for point in points)
            finally:
                process.terminate()
                assert process.wait(timeout=30.0) == 0

    def test_sigkilled_worker_leases_expire_and_work_completes(
            self, tmp_path):
        """Chaos: kill-injected workers die mid-batch; the coordinator
        expires their leases, re-dispatches solo, and finishes 100%."""
        spec = {"schema": "repro.explore-spec/1", "usecase": "fig5",
                "engine": "object",
                "space": {"name": "options.frame_rate",
                          "values": [91.0, 93.0, 97.0, 101.0,
                                     103.0, 107.0]},
                "objectives": ["energy_per_frame"]}
        cache = tmp_path / "cache"
        with BackgroundServer(dispatch=True, workers=1, chunk_size=6,
                              cache_dir=str(cache),
                              lease_ttl_s=1.5) as server:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            # Kill faults live ONLY in the worker environment — an
            # inline kill in the coordinator would take the test down.
            env["REPRO_FAULTS"] = json.dumps(
                {"kill_rate": 0.5, "seed": 3})
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--respawn",
                 "--connect", server.url, "--cache-dir", str(cache),
                 "--batch-size", "3"],
                cwd=REPO_ROOT, env=env)
            try:
                client = server.client()
                deadline = time.monotonic() + 60.0
                while not client.stats()["dispatch"]["workers"]:
                    assert time.monotonic() < deadline, \
                        "worker never registered"
                    time.sleep(0.1)
                job = client.submit(spec)
                final = client.wait(job["id"], timeout=180.0)
                assert final["state"] == "done"
                points = client.result(job["id"])["result"]["points"]
                assert all(point["feasible"] for point in points)
                stats = client.stats()
                assert stats["dispatch"]["expired_total"] > 0
                assert stats["resilience"]["lease_expiries"] > 0
                # Killed incarnations show up dead in the worker table
                # next to the live respawned one.
                workers = stats["dispatch"]["workers"]
                assert sum(1 for worker in workers
                           if not worker["active"]) > 0
            finally:
                process.terminate()
                assert process.wait(timeout=30.0) == 0

    def test_quarantined_task_fails_typed_without_hanging(
            self, monkeypatch):
        """A task whose every lease dies comes back as a typed
        WorkerCrashError result instead of cycling forever.

        The queue's clock is virtual so the orchestration is exact:
        two workers each claim the task and silently die (their leases
        expire); a live bystander worker keeps heartbeating throughout
        so the coordinator's stranded-fleet fallback never takes the
        task back for local execution.
        """
        import repro.exec.queue as queue_module

        class _Clock:
            now = 1000.0

            def monotonic(self):
                return self.now

        clock = _Clock()
        import repro.exec.distributed as distributed_module
        # Queue and executor must share the virtual clock: liveness is
        # "now - last_heartbeat", and mixing a real clock into the
        # fallback check would make every worker look ancient.
        monkeypatch.setattr(queue_module, "time", clock)
        monkeypatch.setattr(distributed_module, "time", clock)
        queue = WorkQueue(lease_ttl_s=10.0)
        executor = DistributedExecutor(queue, fallback_after_s=3600.0)
        outcome = {}

        def run_batch():
            with Simulator(executor=executor, cache=False) as session:
                [result] = session.run_many(_sweep_items([109.0]))
                outcome["result"] = result
                outcome["stats"] = session.last_batch_stats

        runner = threading.Thread(target=run_batch, daemon=True)
        runner.start()
        deadline = time.monotonic() + 30.0
        while queue.describe()["queue_depth"] == 0:
            assert time.monotonic() < deadline, "batch never enqueued"
            assert runner.is_alive(), "batch finished prematurely"
            time.sleep(0.01)
        bystander = queue.register_worker()["worker_id"]
        for strike in range(QUARANTINE_THRESHOLD):
            victim = queue.register_worker()["worker_id"]
            claim_deadline = time.monotonic() + 30.0
            while not queue.claim(victim, max_tasks=1):
                assert time.monotonic() < claim_deadline
                time.sleep(0.01)
            # The victim dies silently; the bystander heartbeats
            # mid-lease so its own liveness never lapses while the
            # victim's lease crosses its deadline.
            clock.now += 6.0
            queue.heartbeat(bystander)
            clock.now += 5.0
        runner.join(timeout=30.0)
        assert not runner.is_alive(), "coordinator hung"
        result, stats = outcome["result"], outcome["stats"]
        assert not result.ok
        assert result.error_type == "WorkerCrashError"
        assert "quarantined" in result.failure
        assert stats.lease_expiries >= QUARANTINE_THRESHOLD
        assert stats.quarantined == 1
