"""Equivalence: event-driven cycle simulator vs the reference loop.

The event-driven simulator must be an observationally perfect drop-in
for ``_cycle_accurate_reference``: bit-identical cycle counts on every
configuration that completes, and the same exception type *and message*
(including the stall cycle number) on every configuration that does not.
These property-style tests sweep randomized small pipelines across the
interesting regimes — streaming, pipeline fill/drain, undersized
buffers, too few ports, mixed clocks — and compare outcomes pairwise.
"""

import random

import pytest

from repro import units
from repro.exceptions import SimulationError, StallError
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, DEFAULT_CLOCK_HZ
from repro.hw.digital.memory import DoubleBuffer, FIFO
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sim.cycle_sim import (
    _cycle_accurate_reference,
    cycle_accurate_latency,
)
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)

#: Generous for 16x16 frames, small enough to keep stuck seeds fast.
_MAX_CYCLES = 200_000


def _outcome(simulator, graph, system, mapping, max_cycles=_MAX_CYCLES):
    """(tag, payload) for one simulator run: latency or error message."""
    try:
        return "ok", simulator(graph, system, mapping, max_cycles)
    except StallError as error:
        return "StallError", str(error)
    except SimulationError as error:
        return "SimulationError", str(error)


def _assert_equivalent(graph, system, mapping, max_cycles=_MAX_CYCLES):
    event = _outcome(cycle_accurate_latency, graph, system, mapping,
                     max_cycles)
    reference = _outcome(_cycle_accurate_reference, graph, system, mapping,
                         max_cycles)
    assert event == reference  # same latency bit-for-bit, or same error


def _random_scenario(seed):
    """A randomized linear pipeline covering the stall regimes.

    Undersized FIFOs produce deadlocks, stingy read ports produce the
    port stall, occasional off-clock units produce the uniform-clock
    error, and everything else streams to completion.
    """
    rng = random.Random(seed)
    size = rng.choice([4, 8, 16])
    n_digital = rng.randint(1, 3)

    source = PixelInput((size, size, 1), name="Input")
    stages = [source]
    previous = source
    for index in range(n_digital):
        stage = ProcessStage(f"S{index}", input_size=(size, size, 1),
                             kernel=(1, 1, 1), stride=(1, 1, 1))
        stage.set_input_stage(previous)
        stages.append(stage)
        previous = stage

    system = SensorSystem("Rand", layers=[Layer(SENSOR_LAYER, 65)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (size, size))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(), (1, size))
    pixels.set_output(adcs)
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)

    in_fifo = FIFO("M0", size=(1, rng.choice([16, 64, size * size])),
                   write_energy_per_word=0, read_energy_per_word=0,
                   num_read_ports=rng.choice([1, 4, 8]),
                   num_write_ports=8)
    adcs.set_output(in_fifo)
    system.add_memory(in_fifo)

    mapping = {"Input": "Pixels"}
    previous_memory = in_fifo
    for index in range(n_digital):
        clock = DEFAULT_CLOCK_HZ
        if rng.random() < 0.1:
            clock = 2 * DEFAULT_CLOCK_HZ  # mixed clock: SimulationError
        unit = ComputeUnit(
            f"PE{index}",
            input_pixels_per_cycle=rng.choice([(1, 1), (1, 2), (2, 2),
                                               (1, 4)]),
            output_pixels_per_cycle=rng.choice([(1, 1), (1, 2), (2, 1)]),
            energy_per_cycle=1 * units.pJ,
            num_stages=rng.randint(1, 4),
            clock_hz=clock)
        unit.set_input(previous_memory)
        if index < n_digital - 1:
            memory = FIFO(f"M{index + 1}",
                          size=(1, rng.choice([2, 4, 16, 256])),
                          write_energy_per_word=0, read_energy_per_word=0,
                          num_read_ports=rng.choice([1, 2, 8]),
                          num_write_ports=8)
            unit.set_output(memory)
            system.add_memory(memory)
            previous_memory = memory
        else:
            unit.set_sink()
        system.add_compute_unit(unit)
        mapping[f"S{index}"] = f"PE{index}"

    return StageGraph(stages), system, Mapping(mapping)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_pipeline(self, seed):
        graph, system, mapping = _random_scenario(seed)
        _assert_equivalent(graph, system, mapping)

    def test_all_regimes_are_exercised(self):
        """The seed range must cover success and both error outcomes."""
        tags = set()
        for seed in range(40):
            graph, system, mapping = _random_scenario(seed)
            tags.add(_outcome(cycle_accurate_latency, graph, system,
                              mapping)[0])
        assert tags == {"ok", "StallError", "SimulationError"}


class TestDeterministicEquivalence:
    def test_fig5_bit_identical(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        mapping = Mapping(FIG5_MAPPING)
        exact = cycle_accurate_latency(graph, system, mapping)
        reference = _cycle_accurate_reference(graph, system, mapping)
        assert exact == reference

    def _two_unit_pipeline(self, mid_size=2, consumer_need=(1, 4),
                           mid_ports=8, depth_a=1, depth_b=1):
        source = PixelInput((16, 16, 1), name="Input")
        stage_a = ProcessStage("A", input_size=(16, 16, 1),
                               kernel=(1, 1, 1), stride=(1, 1, 1))
        stage_b = ProcessStage("B", input_size=(16, 16, 1),
                               kernel=(1, 1, 1), stride=(1, 1, 1))
        stage_a.set_input_stage(source)
        stage_b.set_input_stage(stage_a)

        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (16, 16))
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 16))
        pixels.set_output(adcs)
        in_fifo = FIFO("InFifo", size=(1, 1024), write_energy_per_word=0,
                       read_energy_per_word=0, num_read_ports=8,
                       num_write_ports=8)
        adcs.set_output(in_fifo)
        mid = FIFO("Mid", size=(1, mid_size), write_energy_per_word=0,
                   read_energy_per_word=0, num_read_ports=mid_ports,
                   num_write_ports=8)
        unit_a = ComputeUnit("PEA", input_pixels_per_cycle=(1, 1),
                             output_pixels_per_cycle=(1, 1),
                             energy_per_cycle=1e-12, num_stages=depth_a)
        unit_b = ComputeUnit("PEB", input_pixels_per_cycle=consumer_need,
                             output_pixels_per_cycle=(1, 1),
                             energy_per_cycle=1e-12, num_stages=depth_b)
        unit_a.set_input(in_fifo).set_output(mid)
        unit_b.set_input(mid)
        unit_b.set_sink()
        for part in (in_fifo, mid):
            system.add_memory(part)
        system.add_compute_unit(unit_a)
        system.add_compute_unit(unit_b)
        system.add_analog_array(pixels)
        system.add_analog_array(adcs)
        graph = StageGraph([source, stage_a, stage_b])
        mapping = Mapping({"Input": "Pixels", "A": "PEA", "B": "PEB"})
        return graph, system, mapping

    def test_deadlock_message_identical(self):
        """Same stall cycle number, same blocked-stage list."""
        graph, system, mapping = self._two_unit_pipeline()
        event = _outcome(cycle_accurate_latency, graph, system, mapping)
        reference = _outcome(_cycle_accurate_reference, graph, system,
                             mapping)
        assert event[0] == "StallError"
        assert event == reference
        assert "deadlocked at cycle" in event[1]

    def test_port_stall_identical(self):
        """Reads per cycle beyond the port budget stall both the same."""
        graph, system, mapping = self._two_unit_pipeline(
            mid_size=64, consumer_need=(4, 4), mid_ports=1)
        event = _outcome(cycle_accurate_latency, graph, system, mapping)
        reference = _outcome(_cycle_accurate_reference, graph, system,
                             mapping)
        assert event[0] == "StallError"
        assert "too few read ports" in event[1]
        assert event == reference

    def test_backpressure_oscillation_identical(self):
        """A fast producer throttled by a tiny mid buffer, draining fine."""
        graph, system, mapping = self._two_unit_pipeline(
            mid_size=4, consumer_need=(1, 1), depth_a=3, depth_b=2)
        _assert_equivalent(graph, system, mapping)

    def test_max_cycles_exceeded_identical(self):
        graph, system, mapping = self._two_unit_pipeline(
            mid_size=256, consumer_need=(1, 1))
        event = _outcome(cycle_accurate_latency, graph, system, mapping,
                         max_cycles=10)
        reference = _outcome(_cycle_accurate_reference, graph, system,
                             mapping, max_cycles=10)
        assert event == reference
        assert event[0] == "SimulationError"
        assert "exceeded 10 cycles" in event[1]

    def test_double_buffer_decoupled_identical(self):
        """Frame-granularity buffering between the units."""
        source = PixelInput((8, 8, 1), name="Input")
        stage_a = ProcessStage("A", input_size=(8, 8, 1),
                               kernel=(1, 1, 1), stride=(1, 1, 1))
        stage_b = ProcessStage("B", input_size=(8, 8, 1),
                               kernel=(1, 1, 1), stride=(1, 1, 1))
        stage_a.set_input_stage(source)
        stage_b.set_input_stage(stage_a)
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 8))
        pixels.set_output(adcs)
        in_fifo = FIFO("InFifo", size=(1, 64), write_energy_per_word=0,
                       read_energy_per_word=0, num_read_ports=4,
                       num_write_ports=4)
        adcs.set_output(in_fifo)
        buffer = DoubleBuffer("Buf", size=(8, 8), write_energy_per_word=0,
                              read_energy_per_word=0, num_read_ports=4,
                              num_write_ports=4)
        unit_a = ComputeUnit("PEA", input_pixels_per_cycle=(1, 1),
                             output_pixels_per_cycle=(1, 1),
                             energy_per_cycle=1e-12)
        unit_b = ComputeUnit("PEB", input_pixels_per_cycle=(1, 1),
                             output_pixels_per_cycle=(1, 1),
                             energy_per_cycle=1e-12, num_stages=2)
        unit_a.set_input(in_fifo).set_output(buffer)
        unit_b.set_input(buffer)
        unit_b.set_sink()
        system.add_analog_array(pixels)
        system.add_analog_array(adcs)
        system.add_memory(in_fifo)
        system.add_memory(buffer)
        system.add_compute_unit(unit_a)
        system.add_compute_unit(unit_b)
        graph = StageGraph([source, stage_a, stage_b])
        mapping = Mapping({"Input": "Pixels", "A": "PEA", "B": "PEB"})
        _assert_equivalent(graph, system, mapping)

    def test_fractional_port_share_falls_back_identically(self):
        """Three input memories over a 4-pixel need: thresh is 4/3.

        Occupancy bookkeeping is no longer integral, so the event-driven
        simulator must delegate to the reference loop — outcomes stay
        identical by construction, which this guards.
        """
        graph, system, mapping = self._two_unit_pipeline(mid_size=64)
        unit_b = system.find_unit("PEB")
        extra_a = FIFO("ExtraA", size=(1, 16), write_energy_per_word=0,
                       read_energy_per_word=0, num_read_ports=8,
                       num_write_ports=8)
        extra_b = FIFO("ExtraB", size=(1, 16), write_energy_per_word=0,
                       read_energy_per_word=0, num_read_ports=8,
                       num_write_ports=8)
        unit_b.set_input(extra_a).set_input(extra_b)
        system.add_memory(extra_a)
        system.add_memory(extra_b)
        _assert_equivalent(graph, system, mapping)

    def test_empty_digital_domain(self):
        source = PixelInput((8, 8, 1), name="Input")
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        system.add_analog_array(pixels)
        graph = StageGraph([source])
        mapping = Mapping({"Input": "Pixels"})
        assert cycle_accurate_latency(graph, system, mapping) == 0.0
        assert _cycle_accurate_reference(graph, system, mapping) == 0.0
