"""Second property-based suite: traces, Pareto, components, survey."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.analysis.pareto import DesignPoint, dominated_points, pareto_front
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogMAC,
    CellUsage,
)
from repro.hw.analog.cells import DynamicCell
from repro.hw.analog.extended import PassiveMatrixMultiplier
from repro.sw.trace import MemoryTrace, TraceEvent


class TestTraceProperties:
    @settings(max_examples=40)
    @given(reads=st.integers(min_value=0, max_value=500),
           writes=st.integers(min_value=0, max_value=500),
           size=st.floats(min_value=0.5, max_value=4096))
    def test_from_counts_bookkeeping(self, reads, writes, size):
        if reads + writes == 0:
            return
        trace = MemoryTrace.from_counts(reads, writes,
                                        bytes_per_access=size)
        assert trace.num_reads == reads
        assert trace.num_writes == writes
        assert trace.read_bytes == pytest.approx(reads * size)
        assert len(trace) == reads + writes

    @settings(max_examples=40)
    @given(events=st.lists(
        st.tuples(st.sampled_from("RW"),
                  st.floats(min_value=1, max_value=1e6)),
        min_size=1, max_size=50))
    def test_parse_round_trip(self, events):
        text = "\n".join(f"{op} {size}" for op, size in events)
        trace = MemoryTrace.parse(text)
        assert len(trace) == len(events)
        expected_reads = sum(size for op, size in events if op == "R")
        assert trace.read_bytes == pytest.approx(expected_reads)

    @settings(max_examples=30)
    @given(read_cost=st.floats(min_value=1e-13, max_value=1e-10),
           write_cost=st.floats(min_value=1e-13, max_value=1e-10),
           reads=st.integers(min_value=1, max_value=200),
           writes=st.integers(min_value=1, max_value=200))
    def test_energy_against_is_exact_arithmetic(self, read_cost, write_cost,
                                                reads, writes):
        class FakeMemory:
            read_energy_per_byte = read_cost
            write_energy_per_byte = write_cost
            leakage_power = 0.0

        trace = MemoryTrace.from_counts(reads, writes, bytes_per_access=2)
        dynamic, leakage = trace.energy_against(FakeMemory())
        assert dynamic == pytest.approx(
            2 * reads * read_cost + 2 * writes * write_cost)
        assert leakage == 0.0


class TestParetoProperties:
    points_strategy = st.lists(
        st.tuples(st.floats(min_value=1e-9, max_value=1e-3),
                  st.floats(min_value=1.0, max_value=1e4)),
        min_size=1, max_size=25)

    @settings(max_examples=40)
    @given(raw=points_strategy)
    def test_front_plus_dominated_is_everything(self, raw):
        points = [DesignPoint(f"p{i}", e, d)
                  for i, (e, d) in enumerate(raw)]
        front = pareto_front(points)
        dominated = dominated_points(points)
        assert len(front) + len(dominated) == len(points)

    @settings(max_examples=40)
    @given(raw=points_strategy)
    def test_no_front_point_dominated_by_any_point(self, raw):
        points = [DesignPoint(f"p{i}", e, d)
                  for i, (e, d) in enumerate(raw)]
        for front_point in pareto_front(points):
            assert not any(other.dominates(front_point)
                           for other in points)

    @settings(max_examples=40)
    @given(raw=points_strategy)
    def test_global_minimum_energy_always_on_front(self, raw):
        points = [DesignPoint(f"p{i}", e, d)
                  for i, (e, d) in enumerate(raw)]
        cheapest = min(points, key=lambda p: (p.energy_per_frame,
                                              p.power_density))
        front_ids = {id(p) for p in pareto_front(points)}
        assert id(cheapest) in front_ids


class TestComponentProperties:
    @settings(max_examples=30)
    @given(shared=st.sampled_from([1, 4, 9, 16]),
           delay=st.floats(min_value=1e-6, max_value=1e-2))
    def test_shared_pixels_scale_pd_energy(self, shared, delay):
        single = ActivePixelSensor(num_shared_pixels=1)
        binned = ActivePixelSensor(num_shared_pixels=shared)
        # The PD+FD (dynamic, per-photodiode) part scales with sharing;
        # the shared SF does not.  Energy difference equals (n-1) extra
        # PD+FD firings.
        pd_fd = sum(u.cell.energy(delay) for u in single.cell_usages
                    if u.cell.name in ("PD", "FD"))
        expected_extra = (shared - 1) * pd_fd
        delta = (binned.energy_per_access(delay)
                 - single.energy_per_access(delay))
        assert delta == pytest.approx(expected_extra, rel=1e-6)

    @settings(max_examples=30)
    @given(taps=st.integers(min_value=1, max_value=64),
           delay=st.floats(min_value=1e-7, max_value=1e-3))
    def test_passive_matmul_exact_cv2(self, taps, delay):
        matmul = PassiveMatrixMultiplier(rows=taps, cols=1,
                                         unit_capacitance=5 * units.fF,
                                         voltage_swing=1.0)
        assert matmul.energy_per_access(delay) == pytest.approx(
            taps * 5e-15)

    @settings(max_examples=30)
    @given(spatial=st.integers(min_value=1, max_value=32),
           temporal=st.integers(min_value=1, max_value=8))
    def test_dynamic_cell_usage_scales_linearly(self, spatial, temporal):
        from repro.hw.analog.components import AnalogComponent
        from repro.hw.analog.domain import SignalDomain
        cell = DynamicCell("c", [(10 * units.fF, 1.0)])
        single = AnalogComponent("one", SignalDomain.VOLTAGE,
                                 SignalDomain.VOLTAGE, [CellUsage(cell)])
        multi = AnalogComponent("many", SignalDomain.VOLTAGE,
                                SignalDomain.VOLTAGE,
                                [CellUsage(cell, spatial=spatial,
                                           temporal=temporal)])
        assert multi.energy_per_access(1e-5) == pytest.approx(
            spatial * temporal * single.energy_per_access(1e-5))


class TestSurveyProperties:
    @settings(max_examples=20)
    @given(year=st.integers(min_value=2000, max_value=2022))
    def test_irds_monotone_non_increasing(self, year):
        from repro.survey import irds_node
        assert irds_node(year) >= irds_node(2022)
        if year > 2000:
            assert irds_node(year) <= irds_node(2000)
