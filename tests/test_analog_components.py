"""Tests for A-Components (Eq. 4, Eq. 11, Eq. 13)."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.cells import DynamicCell, OpAmp, StaticCell
from repro.hw.analog.components import (
    ActiveAnalogMemory,
    ActivePixelSensor,
    AnalogAbs,
    AnalogAdder,
    AnalogComparator,
    AnalogComponent,
    AnalogLog,
    AnalogMAC,
    AnalogMax,
    AnalogScaling,
    CellUsage,
    ColumnADC,
    CurrentDomainMAC,
    DigitalPixelSensor,
    PassiveAnalogMemory,
    PWMPixel,
    SampleAndHold,
    SwitchedCapSubtractor,
)
from repro.hw.analog.domain import SignalDomain


class TestCellUsage:
    def test_access_count_is_spatial_times_temporal(self):
        """Eq. 13."""
        usage = CellUsage(DynamicCell("c", [(1e-15, 1.0)]),
                          spatial=4, temporal=2)
        assert usage.access_count == 8

    def test_rejects_zero_counts(self):
        cell = DynamicCell("c", [(1e-15, 1.0)])
        with pytest.raises(ConfigurationError):
            CellUsage(cell, spatial=0)
        with pytest.raises(ConfigurationError):
            CellUsage(cell, temporal=0)

    def test_rejects_negative_static_time(self):
        cell = DynamicCell("c", [(1e-15, 1.0)])
        with pytest.raises(ConfigurationError):
            CellUsage(cell, static_time=-1.0)


class TestAnalogComponentEnergy:
    def test_weighted_sum_of_cells(self):
        """Eq. 4: component energy = sum(cell energy * cell accesses)."""
        cell = DynamicCell("cap", [(10 * units.fF, 1.0)])
        single = AnalogComponent("one", SignalDomain.VOLTAGE,
                                 SignalDomain.VOLTAGE, [CellUsage(cell)])
        quad = AnalogComponent("four", SignalDomain.VOLTAGE,
                               SignalDomain.VOLTAGE,
                               [CellUsage(cell, spatial=4)])
        delay = 1e-6
        assert quad.energy_per_access(delay) == pytest.approx(
            4 * single.energy_per_access(delay))

    def test_delay_split_across_critical_path(self):
        """Eq. 11: with K critical cells each gets delay/K; earlier cells
        stay biased until the end of the component access."""
        # Two identical gm/Id amps in sequence: the first is biased for the
        # whole component delay, the second only for its own slot.
        amp = OpAmp(load_capacitance=100 * units.fF, gain=1.0)
        comp = AnalogComponent("chain", SignalDomain.VOLTAGE,
                               SignalDomain.VOLTAGE,
                               [CellUsage(amp), CellUsage(amp)])
        delay = 1e-6
        slot = delay / 2
        first = amp.energy(slot, static_time=delay)
        second = amp.energy(slot, static_time=slot)
        assert comp.energy_per_access(delay) == pytest.approx(first + second)

    def test_static_time_override_used(self):
        """Analog frame buffers hold their bias for the frame, not a slot."""
        amp = OpAmp(load_capacitance=100 * units.fF, gain=1.0)
        hold = 33e-3
        comp = AnalogComponent("mem", SignalDomain.VOLTAGE,
                               SignalDomain.VOLTAGE,
                               [CellUsage(amp, static_time=hold)])
        delay = 1e-6
        assert comp.energy_per_access(delay) == pytest.approx(
            amp.energy(delay, static_time=hold))

    def test_rejects_non_positive_delay(self):
        cell = DynamicCell("c", [(1e-15, 1.0)])
        comp = AnalogComponent("x", SignalDomain.VOLTAGE,
                               SignalDomain.VOLTAGE, [CellUsage(cell)])
        with pytest.raises(ConfigurationError):
            comp.energy_per_access(0.0)

    def test_rejects_empty_cells(self):
        with pytest.raises(ConfigurationError):
            AnalogComponent("x", SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                            [])

    def test_describe_lists_cells(self):
        comp = ActivePixelSensor()
        text = comp.describe()
        assert "PD" in text and "SF" in text


class TestActivePixelSensor:
    def test_4t_has_floating_diffusion(self):
        aps = ActivePixelSensor(num_transistors=4)
        cell_names = [u.cell.name for u in aps.cell_usages]
        assert "FD" in cell_names

    def test_3t_has_no_floating_diffusion(self):
        aps = ActivePixelSensor(num_transistors=3)
        cell_names = [u.cell.name for u in aps.cell_usages]
        assert "FD" not in cell_names

    def test_only_3t_and_4t_supported(self):
        with pytest.raises(ConfigurationError):
            ActivePixelSensor(num_transistors=5)

    def test_shared_pixels_multiply_pd_energy(self):
        single = ActivePixelSensor(num_shared_pixels=1)
        binned = ActivePixelSensor(num_shared_pixels=4)
        delay = 1e-5
        assert binned.energy_per_access(delay) > single.energy_per_access(
            delay)

    def test_binning_input_shape_square(self):
        binned = ActivePixelSensor(num_shared_pixels=4)
        assert binned.num_input == (2, 2)
        assert binned.input_volume == 4

    def test_cds_doubles_readout(self):
        plain = ActivePixelSensor(correlated_double_sampling=False)
        cds = ActivePixelSensor(correlated_double_sampling=True)
        sf_plain = [u for u in plain.cell_usages if u.cell.name == "SF"][0]
        sf_cds = [u for u in cds.cell_usages if u.cell.name == "SF"][0]
        assert sf_cds.temporal == 2 * sf_plain.temporal

    def test_domains(self):
        aps = ActivePixelSensor()
        assert aps.input_domain is SignalDomain.OPTICAL
        assert aps.output_domain is SignalDomain.VOLTAGE


class TestOtherComponents:
    def test_dps_outputs_digital(self):
        assert DigitalPixelSensor().output_domain is SignalDomain.DIGITAL

    def test_pwm_outputs_time_domain(self):
        assert PWMPixel().output_domain is SignalDomain.TIME

    def test_column_adc_crosses_to_digital(self):
        adc = ColumnADC(bits=10)
        assert adc.input_domain is SignalDomain.VOLTAGE
        assert adc.output_domain is SignalDomain.DIGITAL

    def test_adc_explicit_energy_respected(self):
        adc = ColumnADC(bits=10, energy_per_conversion=7 * units.pJ)
        assert adc.energy_per_access(1e-6) == pytest.approx(7 * units.pJ)

    def test_analog_mac_scales_with_kernel(self):
        small = AnalogMAC(kernel_volume=2, include_opamp=False)
        big = AnalogMAC(kernel_volume=8, include_opamp=False)
        assert big.energy_per_access(1e-6) == pytest.approx(
            4 * small.energy_per_access(1e-6))

    def test_analog_mac_opamp_adds_energy(self):
        passive = AnalogMAC(kernel_volume=9, include_opamp=False)
        active = AnalogMAC(kernel_volume=9, include_opamp=True)
        assert active.energy_per_access(1e-6) > passive.energy_per_access(
            1e-6)

    def test_current_mac_domains(self):
        mac = CurrentDomainMAC(kernel_volume=9)
        assert mac.input_domain is SignalDomain.CURRENT
        assert mac.output_domain is SignalDomain.CURRENT

    def test_adder_consumes_two_inputs(self):
        assert AnalogAdder().input_volume == 2

    def test_max_rejects_single_input(self):
        with pytest.raises(ConfigurationError):
            AnalogMax(num_inputs=1)

    def test_scaling_log_abs_comparator_energies_positive(self):
        for comp in (AnalogScaling(), AnalogLog(), AnalogAbs(),
                     AnalogComparator()):
            assert comp.energy_per_access(1e-6) > 0

    def test_passive_memory_sized_by_resolution(self):
        low = PassiveAnalogMemory(bits=6)
        high = PassiveAnalogMemory(bits=10)
        assert high.energy_per_access(1e-6) > low.energy_per_access(1e-6)

    def test_active_memory_hold_time_dominates(self):
        short = ActiveAnalogMemory(bits=8, hold_time=1e-5)
        long = ActiveAnalogMemory(bits=8, hold_time=1e-2)
        assert long.energy_per_access(1e-6) > 10 * short.energy_per_access(
            1e-6)

    def test_sample_and_hold_has_buffer(self):
        names = [u.cell.name for u in SampleAndHold().cell_usages]
        assert "HoldBuffer" in names

    def test_subtractor_consumes_two_inputs(self):
        assert SwitchedCapSubtractor().input_volume == 2
