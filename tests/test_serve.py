"""Tests for the ``repro serve`` daemon: queue, HTTP API, client, shutdown."""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import SimOptions, Simulator, build_usecase
from repro.api.registry import register_usecase
from repro.explore import ExplorationResult, explore, space_from_dict
from repro.serve import (
    BackgroundServer,
    JobQueue,
    QueueClosed,
    ServeClient,
    ServeError,
    ServeTimeout,
    StreamBuffer,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _explore_spec(rates, usecase="fig5", name=None):
    """A one-axis options sweep: cheap, and every rate is a cache key."""
    spec = {
        "schema": "repro.explore-spec/1",
        "usecase": usecase,
        "space": {"name": "options.frame_rate",
                  "values": [float(rate) for rate in rates]},
        "objectives": ["energy_per_frame", "latency"],
    }
    if name is not None:
        spec["name"] = name
    return spec


def _run_spec(frame_rate):
    return {"design": {"usecase": "fig5"},
            "options": {"frame_rate": float(frame_rate)}}


# --- a builder the tests can hold hostage ----------------------------------

_GATE = threading.Event()
_GATE_ENTERED = threading.Event()


def _gated_fig5():
    """Blocks inside the build phase until the test releases the gate."""
    _GATE_ENTERED.set()
    if not _GATE.wait(timeout=30.0):
        raise RuntimeError("test gate was never released")
    return build_usecase("fig5")


@pytest.fixture
def gated_usecase():
    from repro.api import registry

    _GATE.clear()
    _GATE_ENTERED.clear()
    register_usecase("serve-test-gated", _gated_fig5)
    yield "serve-test-gated"
    registry._REGISTRY.pop("serve-test-gated", None)
    _GATE.set()  # release any straggler worker thread


# --- shared daemon for the read-mostly tests --------------------------------

@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2, chunk_size=2) as background:
        yield background


@pytest.fixture
def client(server):
    return server.client()


class TestStreamBuffer:
    def test_cursor_reads_and_close(self):
        buffer = StreamBuffer()
        buffer.append({"event": "a"})
        buffer.append({"event": "b"})
        events, cursor, closed = buffer.read_from(0)
        assert [event["event"] for event in events] == ["a", "b"]
        assert cursor == 2 and not closed
        events, cursor, closed = buffer.read_from(cursor)
        assert events == [] and cursor == 2
        buffer.append({"event": "c"})
        buffer.close()
        events, cursor, closed = buffer.read_from(cursor)
        assert [event["event"] for event in events] == ["c"]
        assert closed
        assert len(buffer) == 3

    def test_append_after_close_raises(self):
        buffer = StreamBuffer()
        buffer.close()
        buffer.close()  # idempotent
        with pytest.raises(RuntimeError):
            buffer.append({"event": "late"})


class TestQueueGuards:
    def test_unstarted_queue_rejects_submissions(self):
        queue = JobQueue(Simulator())
        spec = _explore_spec([30.0])
        from repro.explore.spec import exploration_spec_from_dict
        with pytest.raises(QueueClosed):
            queue.submit_explore(exploration_spec_from_dict(spec))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            JobQueue(Simulator(), workers=0)
        with pytest.raises(ValueError):
            JobQueue(Simulator(), chunk_size=0)


class TestHealthAndStats:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["schema"] == "repro.serve-stats/1"
        assert stats["workers"] == 2
        assert stats["chunk_size"] == 2
        assert stats["queue_depth"] >= 0
        assert set(stats["jobs"]) == {"queued", "running", "done",
                                      "failed", "cancelled"}
        assert {"hits", "misses"} <= set(stats["cache"])
        assert stats["pools"]["executor"] == "thread"
        assert stats["pools"]["terminal"] is False
        assert stats["requests_served"] >= 1


class TestRunJobs:
    def test_run_job_lifecycle_and_result(self, client):
        job = client.submit(_run_spec(47.0))
        assert job["schema"] == "repro.serve-job/1"
        assert job["kind"] == "run"
        assert job["state"] in ("queued", "running", "done")
        assert job["links"]["result"] == f"/jobs/{job['id']}/result"

        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done"
        assert done["progress"] == {"total": 1, "completed": 1,
                                    "cache_hits": 0}
        assert done["error"] is None
        assert done["finished_at"] >= done["started_at"] >= done["created_at"]

        envelope = client.result(job["id"])
        assert envelope["kind"] == "run"
        from repro.api import SimResult
        result = SimResult.from_dict(envelope["result"])
        direct = Simulator(cache=False).run(
            build_usecase("fig5"), SimOptions(frame_rate=47.0))
        assert result.ok
        assert result.report.total_energy \
            == pytest.approx(direct.report.total_energy)

    def test_warm_run_counts_a_cache_hit(self, client):
        spec = _run_spec(48.0)
        first = client.wait(client.submit(spec)["id"], timeout=60.0)
        assert first["progress"]["cache_hits"] == 0
        second = client.wait(client.submit(spec)["id"], timeout=60.0)
        assert second["state"] == "done"
        assert second["progress"]["cache_hits"] == 1

    def test_explicit_kind_envelope(self, client):
        job = client.submit(_run_spec(49.0), kind="run")
        assert job["kind"] == "run"
        assert client.wait(job["id"], timeout=60.0)["state"] == "done"


class TestExploreJobs:
    def test_explore_job_matches_direct_engine(self, client):
        rates = [31.0, 37.0, 41.0, 43.0]
        job = client.submit(_explore_spec(rates, name="serve-study"))
        assert job["kind"] == "explore"
        assert job["name"] == "serve-study"

        done = client.wait(job["id"], timeout=120.0)
        assert done["state"] == "done"
        assert done["progress"]["total"] == len(rates)
        assert done["progress"]["completed"] == len(rates)

        document = client.result(job["id"])["result"]
        served = ExplorationResult.from_dict(document)
        assert served.to_dict() == document  # exact JSON round-trip
        direct = explore(
            space_from_dict({"name": "options.frame_rate",
                             "values": rates}), "fig5",
            objectives=["energy_per_frame", "latency"])
        assert [point.params for point in served.points] \
            == [point.params for point in direct.points]
        assert [point.metrics for point in served.points] \
            == [point.metrics for point in direct.points]

    def test_identical_resubmit_is_all_cache_hits(self, client):
        spec = _explore_spec([53.0, 59.0, 61.0])
        cold = client.wait(client.submit(spec)["id"], timeout=120.0)
        assert cold["progress"]["cache_hits"] == 0
        warm = client.wait(client.submit(spec)["id"], timeout=120.0)
        assert warm["state"] == "done"
        assert warm["progress"]["cache_hits"] == 3
        assert warm["progress"]["completed"] == 3

    def test_jobs_listing_knows_the_job(self, client):
        job = client.submit(_explore_spec([67.0]))
        client.wait(job["id"], timeout=60.0)
        listed = {entry["id"]: entry for entry in client.jobs()}
        assert listed[job["id"]]["state"] == "done"


class TestStreaming:
    def test_jsonl_stream_replays_points_in_space_order(self, client):
        rates = [71.0, 73.0, 79.0]
        job = client.submit(_explore_spec(rates))
        events = list(client.stream(job["id"]))
        points = [event for event in events if event["event"] == "point"]
        assert [point["point"]["params"]["options.frame_rate"]
                for point in points] == rates
        assert events[-1]["event"] == "done"
        assert events[-1]["job"]["state"] == "done"

    def test_sse_stream_after_completion(self, client):
        job = client.submit(_explore_spec([83.0]))
        client.wait(job["id"], timeout=60.0)
        connection = http.client.HTTPConnection(*client_address(client),
                                                timeout=30.0)
        try:
            connection.request(
                "GET", f"/jobs/{job['id']}/stream?format=sse")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "text/event-stream"
            body = response.read().decode("utf-8")
        finally:
            connection.close()
        assert "event: point\n" in body
        assert "event: done\n" in body
        assert "data: " in body

    def test_bad_stream_format_rejected(self, client):
        job = client.submit(_explore_spec([89.0]))
        client.wait(job["id"], timeout=60.0)
        with pytest.raises(ServeError) as excinfo:
            http_get_json(client, f"/jobs/{job['id']}/stream?format=xml")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "BadFormat"


def client_address(client):
    return client.host, client.port


def http_get_json(client, path):
    """A raw GET that raises ServeError like the client does."""
    connection = http.client.HTTPConnection(*client_address(client),
                                            timeout=30.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        raw = response.read()
        if response.status >= 400:
            error = json.loads(raw)["error"]
            raise ServeError(response.status, error["type"],
                             error["message"])
        return json.loads(raw)
    finally:
        connection.close()


def http_post_raw(client, path, body, method="POST"):
    connection = http.client.HTTPConnection(*client_address(client),
                                            timeout=30.0)
    try:
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestErrorResponses:
    def test_invalid_json_body(self, client):
        status, payload = http_post_raw(client, "/jobs", b"{not json")
        assert status == 400
        assert payload["error"]["type"] == "InvalidJSON"

    def test_non_object_spec(self, client):
        status, payload = http_post_raw(client, "/jobs", b"[1, 2, 3]")
        assert status == 400
        assert payload["error"]["type"] == "InvalidSpec"

    def test_bad_envelope_kind(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit(_run_spec(30.0), kind="dance")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "InvalidSpec"

    def test_unknown_usecase_in_explore_spec(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit(_explore_spec([30.0], usecase="warp-drive"))
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "ConfigurationError"
        assert "warp-drive" in excinfo.value.message

    def test_malformed_explore_spec(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"usecase": "fig5", "space": {"bogus": True}})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "SerializationError"

    def test_malformed_run_spec(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"nonsense": True})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "SerializationError"

    def test_bad_options_in_run_spec(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"design": {"usecase": "fig5"}, "options": 5})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "ConfigurationError"

    def test_unknown_job_is_404_everywhere(self, client):
        for call in (client.job, client.result, client.cancel):
            with pytest.raises(ServeError) as excinfo:
                call("job-999999")
            assert excinfo.value.status == 404
            assert excinfo.value.error_type == "UnknownJob"

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            http_get_json(client, "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "NotFound"

    def test_method_not_allowed(self, client):
        status, payload = http_post_raw(client, "/healthz", b"")
        assert status == 405
        assert payload["error"]["type"] == "MethodNotAllowed"
        status, payload = http_post_raw(client, "/jobs", b"{}",
                                        method="PUT")
        assert status == 405

    def test_oversized_body_rejected(self, client):
        connection = http.client.HTTPConnection(*client_address(client),
                                                timeout=30.0)
        try:
            connection.request(
                "POST", "/jobs", body=b"",
                headers={"Content-Length": str(64 * 1024 * 1024)})
            response = connection.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["error"]["type"] \
                == "PayloadTooLarge"
        finally:
            connection.close()


class TestCancellation:
    def test_cancel_queued_job(self, gated_usecase):
        with BackgroundServer(workers=1) as background:
            client = background.client()
            hostage = client.submit(_explore_spec([30.0],
                                                  usecase=gated_usecase))
            assert _GATE_ENTERED.wait(timeout=30.0)
            queued = client.submit(_explore_spec([30.0, 60.0]))
            cancelled = client.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            assert cancelled["cancel_requested"] is True
            assert cancelled["progress"]["completed"] == 0
            with pytest.raises(ServeError) as excinfo:
                client.result(queued["id"])
            assert excinfo.value.status == 409
            assert excinfo.value.error_type == "JobNotDone"
            # The cancelled job's stream seals with its terminal state.
            events = list(client.stream(queued["id"]))
            assert events[-1]["event"] == "done"
            assert events[-1]["job"]["state"] == "cancelled"
            _GATE.set()
            assert client.wait(hostage["id"], timeout=60.0)["state"] \
                == "done"

    def test_cancel_running_job_at_chunk_boundary(self, gated_usecase):
        with BackgroundServer(workers=1, chunk_size=1) as background:
            client = background.client()
            job = client.submit(_explore_spec(
                [30.0, 45.0, 60.0], usecase=gated_usecase))
            assert _GATE_ENTERED.wait(timeout=30.0)  # chunk 1 is building
            requested = client.cancel(job["id"])
            assert requested["cancel_requested"] is True
            assert requested["state"] == "running"
            _GATE.set()
            final = client.wait(job["id"], timeout=60.0)
            assert final["state"] == "cancelled"
            # Chunk 1 finished; the stop flag fired before chunk 2.
            assert final["progress"]["completed"] == 1
            assert final["progress"]["total"] == 3
            with pytest.raises(ServeError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.status == 409

    def test_cancel_terminal_job_is_a_noop(self, client):
        job = client.submit(_run_spec(97.0))
        assert client.wait(job["id"], timeout=60.0)["state"] == "done"
        after = client.cancel(job["id"])
        assert after["state"] == "done"
        assert client.result(job["id"])["result"] is not None


class TestConcurrentClients:
    def test_submitters_share_one_cache(self):
        rates = [101.0, 103.0, 107.0, 109.0]
        spec = _explore_spec(rates)
        with BackgroundServer(workers=2) as background:
            cold = background.client()
            first = cold.wait(cold.submit(spec)["id"], timeout=120.0)
            assert first["state"] == "done"
            assert first["progress"]["cache_hits"] == 0

            outcomes = []
            errors = []

            def submit_and_wait():
                try:
                    mine = background.client()
                    job = mine.submit(spec)
                    outcomes.append(mine.wait(job["id"], timeout=120.0))
                except BaseException as error:  # surfaced via assert below
                    errors.append(error)

            threads = [threading.Thread(target=submit_and_wait)
                       for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors
            assert len(outcomes) == 2
            for outcome in outcomes:
                assert outcome["state"] == "done"
                # Every point was served from the shared warm cache.
                assert outcome["progress"]["cache_hits"] == len(rates)

            stats = background.client().stats()
            assert stats["cache"]["hits"] >= 2 * len(rates)
            assert stats["jobs"]["done"] == 3


class TestGracefulShutdown:
    def test_shutdown_flushes_jobs_to_terminal_states(self, gated_usecase):
        background = BackgroundServer(workers=1, chunk_size=1)
        background.__enter__()
        try:
            client = background.client()
            running = client.submit(_explore_spec(
                [30.0, 45.0, 60.0], usecase=gated_usecase))
            assert _GATE_ENTERED.wait(timeout=30.0)
            queued = client.submit(_explore_spec([113.0, 127.0]))

            shutdown = threading.Thread(
                target=background.__exit__, args=(None, None, None))
            shutdown.start()
            # Shutdown cancels every live job before the gate opens.
            queue = background.app.queue
            deadline = time.monotonic() + 30.0
            while not queue.get(running["id"]).cancel_requested:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            _GATE.set()
            shutdown.join(timeout=60.0)
            assert not shutdown.is_alive()
        finally:
            _GATE.set()

        states = {job.id: job.to_dict() for job in background.app.queue.jobs()}
        assert states[queued["id"]]["state"] == "cancelled"
        assert states[queued["id"]]["progress"]["completed"] == 0
        assert states[running["id"]]["state"] == "cancelled"
        assert background.app.simulator.closed
        # The socket is gone: new clients cannot connect.
        with pytest.raises(OSError):
            background.client(timeout=2.0).healthz()


class TestServeSubprocess:
    def test_cli_daemon_end_to_end(self, tmp_path):
        """Boot ``repro serve`` for real: ready file, one job, SIGTERM."""
        ready = tmp_path / "ready.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--ready-file", str(ready)],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.monotonic() + 30.0
            while not ready.exists():
                assert process.poll() is None, process.communicate()[1]
                assert time.monotonic() < deadline, "ready file never came"
                time.sleep(0.05)
            address = json.loads(ready.read_text())
            client = ServeClient.from_url(address["url"], timeout=30.0)
            assert client.healthz()["status"] == "ok"
            job = client.submit(_run_spec(50.0))
            assert client.wait(job["id"], timeout=120.0)["state"] == "done"
            process.send_signal(signal.SIGTERM)
            stdout, _stderr = process.communicate(timeout=60.0)
            assert process.returncode == 0
            assert "repro serve listening on" in stdout
            assert "shutting down" in stdout
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestWaitTimeout:
    def test_wait_raises_typed_timeout(self, gated_usecase):
        with BackgroundServer(workers=1) as background:
            client = background.client()
            job = client.submit(_explore_spec([30.0],
                                              usecase=gated_usecase))
            assert _GATE_ENTERED.wait(timeout=30.0)
            with pytest.raises(ServeTimeout):
                client.wait(job["id"], timeout=0.2, poll_s=0.05)
            _GATE.set()
            assert client.wait(job["id"], timeout=60.0)["state"] == "done"
