"""Tests for the vectorized structure-of-arrays explore fast path.

The vector engine promises *bit-identical* results to the per-point
object path wherever the scalar pipeline is pure float arithmetic, so
these tests compare whole serialized exploration documents — params,
metrics, failures, bottlenecks — with plain equality, never tolerances.
"""

import json
import random

import pytest

from repro.api import Simulator
from repro.api.registry import available_usecases
from repro.exceptions import ConfigurationError, SerializationError
from repro.explore import (
    ENGINE_COUNTERS,
    ExplorationResult,
    ExplorationSpec,
    Metric,
    choice,
    exploration_spec_from_dict,
    explore,
    grid,
    register_metric,
    zipped,
)
from repro.explore.metrics import _REGISTRY, available_metrics
from repro.explore.vector import (
    VECTOR_MIN_POINTS,
    numpy_available,
    vector_support_error,
)

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="vector engine needs numpy")

#: Design-parameter axes of each registered usecase builder.
_DESIGN_AXES = {
    "fig5": {},
    "edgaze": {"placement": ["2D-In", "2D-Off", "3D-In", "3D-In-STT"],
               "cis_node": [130, 65]},
    "edgaze_mixed": {"cis_node": [130, 65]},
    "rhythmic": {"placement": ["2D-In", "2D-Off", "3D-In", "3D-In-STT"],
                 "cis_node": [130, 65]},
    "threelayer": {"burst_fps": [480.0, 960.0, 1920.0]},
}


def _documents(space, usecase, objectives, annotate=True):
    """Serialized object-path and vector-path results, engines stripped."""
    document_object = explore(space, usecase, objectives=objectives,
                              annotate=annotate,
                              engine="object").to_dict()
    document_vector = explore(space, usecase, objectives=objectives,
                              annotate=annotate,
                              engine="vector").to_dict()
    engines = document_vector.pop("engines")
    document_object.pop("engines")
    return document_object, document_vector, engines


def _sampled_space(usecase, rng, count):
    """``count`` random points: design axes and frame rate per point.

    Zipped axes give every point its own (design, rate) pair, so the
    run exercises the per-design grouping, not just one big batch.  A
    tail of absurd frame rates lands in TimingError territory, covering
    the infeasible-point path.
    """
    rates = [round(rng.uniform(5.0, 400.0), 3) for _ in range(count)]
    for index in rng.sample(range(count), count // 10):
        rates[index] = round(rng.uniform(1e5, 1e7), 1)
    axes = [choice("options.frame_rate", rates)]
    for name, values in _DESIGN_AXES[usecase].items():
        axes.append(choice(name, [rng.choice(values) for _ in range(count)]))
    return zipped(*axes) if len(axes) > 1 else axes[0]


class TestEquivalence:
    """Vector output is indistinguishable from the object path."""

    @pytest.mark.parametrize("usecase", sorted(_DESIGN_AXES))
    def test_sampled_designs_match_exactly(self, usecase):
        rng = random.Random(f"vector-{usecase}")
        space = _sampled_space(usecase, rng, count=100)
        document_object, document_vector, engines = _documents(
            space, usecase,
            objectives=("energy_per_frame", "power_density", "latency"))
        assert engines["vectorized"] == len(space)
        assert engines["fallback"] == 0
        assert json.dumps(document_vector, sort_keys=True) \
            == json.dumps(document_object, sort_keys=True)

    def test_every_builtin_metric_matches_exactly(self):
        space = grid(**{"options.frame_rate":
                        [9.0, 15.0, 30.0, 60.0, 120.0, 240.0, 2.0e6]})
        document_object, document_vector, engines = _documents(
            space, "edgaze", objectives=tuple(available_metrics()))
        assert engines["vectorized"] == len(space)
        assert json.dumps(document_vector, sort_keys=True) \
            == json.dumps(document_object, sort_keys=True)

    def test_exposure_slots_axis_matches_exactly(self):
        space = grid(**{"options.frame_rate": [30.0, 60.0],
                        "options.exposure_slots": [1, 2, 4]})
        document_object, document_vector, engines = _documents(
            space, "fig5", objectives=("energy_per_frame", "frame_slack"))
        assert engines["vectorized"] == len(space)
        assert document_vector == document_object


class TestRouting:
    """Which points the auto engine routes where, and the counters."""

    def test_auto_vectorizes_groups_at_threshold(self):
        rates = [float(15 + 5 * step) for step in range(VECTOR_MIN_POINTS)]
        result = explore(grid(**{"options.frame_rate": rates}), "fig5",
                         objectives=("energy_per_frame",))
        assert result.engines == {"vectorized": len(rates), "fallback": 0}

    def test_auto_leaves_small_groups_on_object_path(self):
        rates = [float(15 + 5 * step)
                 for step in range(VECTOR_MIN_POINTS - 1)]
        result = explore(grid(**{"options.frame_rate": rates}), "fig5",
                         objectives=("energy_per_frame",))
        assert result.engines == {"vectorized": 0, "fallback": len(rates)}

    def test_object_engine_routes_nothing(self):
        result = explore(
            grid(**{"options.frame_rate": [15.0, 30.0, 60.0, 120.0]}),
            "fig5", objectives=("energy_per_frame",), engine="object")
        assert result.engines == dict.fromkeys(ENGINE_COUNTERS, 0)

    def test_mixed_group_sizes_split_between_engines(self):
        # 5 points on one design, 2 on another: the big group vectorizes
        # under auto, the small one falls back — in one exploration.
        rates = [20.0, 30.0, 40.0, 50.0, 60.0, 30.0, 60.0]
        nodes = [65, 65, 65, 65, 65, 130, 130]
        space = zipped(choice("options.frame_rate", rates),
                       choice("cis_node", nodes))
        result = explore(space, "edgaze_mixed",
                         objectives=("energy_per_frame",))
        assert result.engines == {"vectorized": 5, "fallback": 2}
        assert len(result.feasible_points) == len(rates)

    def test_cycle_accurate_points_fall_back(self):
        space = grid(**{"options.frame_rate": [20.0, 30.0, 40.0, 50.0],
                        "options.cycle_accurate": [False, True]})
        result = explore(space, "fig5", objectives=("energy_per_frame",))
        assert result.engines == {"vectorized": 4, "fallback": 4}

    def test_vector_engine_takes_singleton_groups(self):
        result = explore(grid(**{"options.frame_rate": [33.0]}), "fig5",
                         objectives=("energy_per_frame",), engine="vector")
        assert result.engines == {"vectorized": 1, "fallback": 0}

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ConfigurationError, match="engine must be one"):
            explore(grid(**{"options.frame_rate": [30.0]}), "fig5",
                    objectives=("energy_per_frame",), engine="simd")

    def test_custom_metric_without_vector_falls_back_under_auto(self):
        name = "test-vector-scalar-only"
        register_metric(Metric(
            name, unit="J",
            extract=lambda design, report: report.total_energy))
        try:
            result = explore(
                grid(**{"options.frame_rate": [20.0, 30.0, 40.0, 50.0]}),
                "fig5", objectives=(name,))
            assert result.engines == {"vectorized": 0, "fallback": 4}
            # The object path carries full reports, which scalar-only
            # metrics (and their callers) may rely on.
            assert all(point.report is not None
                       for point in result.feasible_points)
        finally:
            _REGISTRY.pop(name, None)

    def test_vector_engine_rejects_scalar_only_metrics(self):
        name = "test-vector-scalar-only"
        register_metric(Metric(
            name, unit="J",
            extract=lambda design, report: report.total_energy))
        try:
            support_error = vector_support_error(
                [_REGISTRY[name], _REGISTRY["latency"]])
            assert name in support_error
            with pytest.raises(ConfigurationError,
                               match="engine 'vector' is unavailable"):
                explore(grid(**{"options.frame_rate": [30.0]}), "fig5",
                        objectives=(name,), engine="vector")
        finally:
            _REGISTRY.pop(name, None)


class TestCacheIntegration:
    """Vector results land in the same two-tier result cache."""

    _RATES = [21.0, 34.0, 55.0, 89.0, 3.0e6]

    def _space(self):
        return grid(**{"options.frame_rate": self._RATES})

    def test_object_rerun_is_served_from_vector_run(self):
        simulator = Simulator()
        cold = explore(self._space(), "edgaze",
                       objectives=("energy_per_frame", "latency"),
                       simulator=simulator, engine="vector")
        assert simulator.cache_info().hits == 0
        warm = explore(self._space(), "edgaze",
                       objectives=("energy_per_frame", "latency"),
                       simulator=simulator, engine="object")
        info = simulator.cache_info()
        assert info.hits == len(self._RATES)
        assert info.misses == len(self._RATES)
        document_cold = cold.to_dict()
        document_warm = warm.to_dict()
        document_cold.pop("engines")
        document_warm.pop("engines")
        assert document_warm == document_cold

    def test_vector_rerun_probes_the_cache(self):
        simulator = Simulator()
        for _ in range(2):
            result = explore(self._space(), "edgaze",
                             objectives=("energy_per_frame",),
                             simulator=simulator, engine="vector")
        assert simulator.cache_info().hits == len(self._RATES)
        assert result.engines["vectorized"] == len(self._RATES)

    def test_clear_cache_drops_pending_backfill(self):
        simulator = Simulator()
        explore(self._space(), "edgaze",
                objectives=("energy_per_frame",),
                simulator=simulator, engine="vector")
        simulator.clear_cache()
        explore(self._space(), "edgaze",
                objectives=("energy_per_frame",),
                simulator=simulator, engine="vector")
        assert simulator.cache_info().hits == 0


class TestSerialization:
    """Engine tallies in documents and specs, with old-document defaults."""

    def _result(self):
        return explore(
            grid(**{"options.frame_rate": [20.0, 30.0, 40.0, 50.0]}),
            "fig5", objectives=("energy_per_frame",))

    def test_engines_round_trip(self):
        result = self._result()
        document = result.to_dict()
        assert document["engines"] == {"vectorized": 4, "fallback": 0}
        restored = ExplorationResult.from_dict(document)
        assert restored.engines == result.engines
        assert restored.to_dict() == document

    def test_old_documents_default_to_zero_counters(self):
        document = self._result().to_dict()
        del document["engines"]
        restored = ExplorationResult.from_dict(document)
        assert restored.engines == dict.fromkeys(ENGINE_COUNTERS, 0)

    def test_spec_engine_round_trips(self):
        payload = {
            "schema": "repro.explore-spec/1",
            "usecase": "fig5",
            "space": {"name": "options.frame_rate", "values": [30.0]},
            "engine": "vector",
        }
        spec = exploration_spec_from_dict(payload)
        assert spec.engine == "vector"
        assert spec.to_dict()["engine"] == "vector"
        # The default engine stays out of the serialized form.
        default = exploration_spec_from_dict(
            {key: value for key, value in payload.items()
             if key != "engine"})
        assert default.engine == "auto"
        assert "engine" not in default.to_dict()

    def test_spec_rejects_unknown_engine(self):
        with pytest.raises(SerializationError, match="spec engine"):
            ExplorationSpec(
                usecase="fig5",
                space=grid(**{"options.frame_rate": [30.0]}),
                engine="simd")


class TestServeIntegration:
    """The daemon runs vector explorations and reports engine totals."""

    def test_stats_surface_engine_totals(self):
        from repro.serve import BackgroundServer

        spec = {
            "schema": "repro.explore-spec/1",
            "usecase": "fig5",
            "space": {"name": "options.frame_rate",
                      "values": [18.0, 27.0, 36.0, 45.0, 54.0, 63.0]},
            "objectives": ["energy_per_frame", "latency"],
            "engine": "vector",
        }
        with BackgroundServer(workers=1, chunk_size=8) as background:
            client = background.client()
            job = client.submit(spec)
            done = client.wait(job["id"], timeout=120.0)
            assert done["state"] == "done"
            document = client.result(job["id"])["result"]
            assert document["engines"] == {"vectorized": 6, "fallback": 0}
            stats = client.stats()
            assert stats["engines"]["vectorized"] >= 6
            assert set(stats["engines"]) == set(ENGINE_COUNTERS)
