"""Tests for the digital-domain simulation (analytical + cycle-accurate)."""

import pytest

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import DoubleBuffer, FIFO, LineBuffer
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sim.cycle_sim import (
    cycle_accurate_latency,
    simulate_digital,
)
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import Conv2DStage, PixelInput, ProcessStage

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


class TestAnalyticalTimeline:
    def test_fig5_edge_unit_cycles(self):
        """16x16 outputs at 1 px/cycle through a 2-stage pipeline."""
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        timeline = simulate_digital(graph, system, Mapping(FIG5_MAPPING))
        activity = timeline.activity_for("EdgeDetection")
        assert activity.cycles == pytest.approx(256 + 1)

    def test_fig5_latency_at_100mhz(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        timeline = simulate_digital(graph, system, Mapping(FIG5_MAPPING))
        assert timeline.total_latency == pytest.approx(257 * 1e-8)

    def test_memory_access_counts(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        timeline = simulate_digital(graph, system, Mapping(FIG5_MAPPING))
        # Edge unit reads 3 px/cycle over 256 steady cycles.
        assert timeline.memory_reads["LineBuffer"] == pytest.approx(3 * 256)
        # Binning stage writes its 16x16 output into the line buffer.
        assert timeline.memory_writes["LineBuffer"] == pytest.approx(256)

    def test_memory_stage_attribution(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        timeline = simulate_digital(graph, system, Mapping(FIG5_MAPPING))
        assert timeline.memory_stage["LineBuffer"] == "EdgeDetection"

    def test_empty_digital_domain(self):
        """Fully-analog pipelines have zero digital latency."""
        source = PixelInput((8, 8, 1), name="Input")
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        system.add_analog_array(pixels)
        graph = StageGraph([source])
        timeline = simulate_digital(graph, system,
                                    Mapping({"Input": "Pixels"}))
        assert timeline.total_latency == 0.0
        assert timeline.activities == []


def _two_stage_digital(producer_out=(1, 1), consumer_in=(1, 1),
                       memory_cls=FIFO, memory_size=(1, 64)):
    """A 64x64 pipeline with two digital units linked by one memory."""
    source = PixelInput((64, 64, 1), name="Input")
    first = ProcessStage("First", input_size=(64, 64, 1),
                         kernel=(1, 1, 1), stride=(1, 1, 1))
    second = ProcessStage("Second", input_size=(64, 64, 1),
                          kernel=(3, 3, 1), stride=(1, 1, 1), padding="same")
    first.set_input_stage(source)
    second.set_input_stage(first)

    system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (64, 64))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(), (1, 64))
    pixels.set_output(adcs)
    in_fifo = FIFO("InFifo", size=(1, 128), write_energy_per_word=0,
                   read_energy_per_word=0, num_read_ports=4,
                   num_write_ports=4)
    if memory_cls is LineBuffer:
        memory = LineBuffer("Mid", size=memory_size,
                            write_energy_per_word=0, read_energy_per_word=0,
                            num_write_ports=4)
    else:
        memory = memory_cls("Mid", size=memory_size,
                            write_energy_per_word=0, read_energy_per_word=0,
                            num_read_ports=8, num_write_ports=8)
    adcs.set_output(in_fifo)
    first_unit = ComputeUnit("FirstPE", input_pixels_per_cycle=(1, 1),
                             output_pixels_per_cycle=producer_out,
                             energy_per_cycle=1e-12)
    second_unit = ComputeUnit("SecondPE", input_pixels_per_cycle=consumer_in,
                              output_pixels_per_cycle=(1, 1),
                              energy_per_cycle=1e-12)
    first_unit.set_input(in_fifo).set_output(memory)
    second_unit.set_input(memory)
    second_unit.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(in_fifo)
    system.add_memory(memory)
    system.add_compute_unit(first_unit)
    system.add_compute_unit(second_unit)
    mapping = {"Input": "Pixels", "First": "FirstPE", "Second": "SecondPE"}
    return [source, first, second], system, mapping


class TestStreamingOverlap:
    def test_fifo_consumer_starts_almost_immediately(self):
        stages, system, mapping = _two_stage_digital()
        graph = StageGraph(stages)
        timeline = simulate_digital(graph, system, Mapping(mapping))
        first = timeline.activity_for("First")
        second = timeline.activity_for("Second")
        assert second.start < first.finish
        assert second.start <= first.duration * 0.05

    def test_line_buffer_consumer_waits_for_kernel_rows(self):
        stages, system, mapping = _two_stage_digital(
            consumer_in=(3, 1), memory_cls=LineBuffer, memory_size=(3, 64))
        graph = StageGraph(stages)
        timeline = simulate_digital(graph, system, Mapping(mapping))
        first = timeline.activity_for("First")
        second = timeline.activity_for("Second")
        assert second.start == pytest.approx(first.duration * (2 / 64))

    def test_double_buffer_consumer_waits_for_full_buffer(self):
        stages, system, mapping = _two_stage_digital(
            memory_cls=DoubleBuffer, memory_size=(64, 64))
        graph = StageGraph(stages)
        timeline = simulate_digital(graph, system, Mapping(mapping))
        first = timeline.activity_for("First")
        second = timeline.activity_for("Second")
        assert second.start == pytest.approx(first.start + first.duration)

    def test_hardware_reuse_serializes(self):
        """Two stages mapped to one unit run back to back."""
        source = PixelInput((16, 16, 1), name="Input")
        a = ProcessStage("A", input_size=(16, 16, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1))
        b = ProcessStage("B", input_size=(16, 16, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1))
        a.set_input_stage(source)
        b.set_input_stage(a)
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (16, 16))
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 16))
        pixels.set_output(adcs)
        fifo = FIFO("F", size=(1, 256), write_energy_per_word=0,
                    read_energy_per_word=0, num_read_ports=2,
                    num_write_ports=2)
        adcs.set_output(fifo)
        unit = ComputeUnit("PE", input_pixels_per_cycle=(1, 1),
                           output_pixels_per_cycle=(1, 1),
                           energy_per_cycle=1e-12)
        unit.set_input(fifo)
        unit.set_sink()
        system.add_analog_array(pixels)
        system.add_analog_array(adcs)
        system.add_memory(fifo)
        system.add_compute_unit(unit)
        graph = StageGraph([source, a, b])
        timeline = simulate_digital(
            graph, system,
            Mapping({"Input": "Pixels", "A": "PE", "B": "PE"}))
        first = timeline.activity_for("A")
        second = timeline.activity_for("B")
        assert second.start >= first.finish


class TestSystolic:
    def test_systolic_cycles_use_mac_count(self):
        source = PixelInput((16, 16, 1), name="Input")
        conv = Conv2DStage("Conv", input_size=(16, 16, 1), num_kernels=8,
                           kernel_size=(3, 3))
        conv.set_input_stage(source)
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (16, 16))
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 16))
        pixels.set_output(adcs)
        buf = DoubleBuffer("Buf", size=(16, 16), write_energy_per_word=0,
                           read_energy_per_word=0, num_read_ports=64,
                           num_write_ports=64)
        adcs.set_output(buf)
        array = SystolicArray("SA", dimensions=(8, 8),
                              energy_per_mac=1 * units.pJ, utilization=1.0)
        array.set_input(buf)
        array.set_sink()
        system.add_analog_array(pixels)
        system.add_analog_array(adcs)
        system.add_memory(buf)
        system.add_compute_unit(array)
        graph = StageGraph([source, conv])
        timeline = simulate_digital(
            graph, system, Mapping({"Input": "Pixels", "Conv": "SA"}))
        activity = timeline.activity_for("Conv")
        assert activity.cycles == pytest.approx(
            array.cycles_for_macs(conv.num_macs))
        assert activity.energy == pytest.approx(
            conv.num_macs * 1 * units.pJ)


class TestCycleAccurate:
    def test_matches_analytical_on_fig5(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        mapping = Mapping(FIG5_MAPPING)
        analytical = simulate_digital(graph, system, mapping).total_latency
        exact = cycle_accurate_latency(graph, system, mapping)
        assert exact == pytest.approx(analytical, rel=0.05)

    def test_empty_digital_domain_zero_latency(self):
        source = PixelInput((8, 8, 1), name="Input")
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        system.add_analog_array(pixels)
        graph = StageGraph([source])
        assert cycle_accurate_latency(graph, system,
                                      Mapping({"Input": "Pixels"})) == 0.0
