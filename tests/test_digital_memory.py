"""Tests for digital memory structures (Eq. 16)."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.digital.memory import DoubleBuffer, FIFO, LineBuffer
from repro.memlib import SRAMModel, STTRAMModel


def _fifo(**kwargs):
    defaults = dict(size=(1, 256),
                    write_energy_per_word=0.5 * units.pJ,
                    read_energy_per_word=0.4 * units.pJ)
    defaults.update(kwargs)
    return FIFO("F", **defaults)


class TestConstruction:
    def test_capacity_from_size(self):
        assert _fifo().capacity_pixels == 256

    def test_line_buffer_requires_2d_size(self):
        with pytest.raises(ConfigurationError):
            LineBuffer("LB", size=(3,), write_energy_per_word=0,
                       read_energy_per_word=0)

    def test_line_buffer_rows_and_length(self):
        lb = LineBuffer("LB", size=(3, 640), write_energy_per_word=0,
                        read_energy_per_word=0)
        assert lb.num_rows == 3
        assert lb.row_length == 640

    def test_line_buffer_default_port_per_row(self):
        lb = LineBuffer("LB", size=(3, 640), write_energy_per_word=0,
                        read_energy_per_word=0)
        assert lb.num_read_ports == 3

    def test_invalid_duty_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            _fifo(duty_alpha=1.5)

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            _fifo(write_energy_per_word=-1.0)


class TestDynamicEnergy:
    def test_write_energy_per_pixel(self):
        fifo = _fifo()
        assert fifo.write_energy(100) == pytest.approx(100 * 0.5 * units.pJ)

    def test_read_energy_per_pixel(self):
        fifo = _fifo()
        assert fifo.read_energy(100) == pytest.approx(100 * 0.4 * units.pJ)

    def test_word_packing_divides_accesses(self):
        packed = _fifo(pixels_per_write_word=4)
        assert packed.write_energy(100) == pytest.approx(
            25 * 0.5 * units.pJ)

    def test_negative_pixel_count_rejected(self):
        with pytest.raises(ConfigurationError):
            _fifo().read_energy(-1)


class TestLeakage:
    def test_eq16_leakage_term(self):
        """E_leak = P_leak * (1/FR) * alpha."""
        fifo = _fifo(leakage_power=1 * units.uW, duty_alpha=0.5)
        frame_time = 1 / 30
        assert fifo.leakage_energy(frame_time) == pytest.approx(
            1e-6 * frame_time * 0.5)

    def test_power_gated_memory_leaks_nothing(self):
        fifo = _fifo(leakage_power=1 * units.uW, duty_alpha=0.0)
        assert fifo.leakage_energy(1 / 30) == 0.0

    def test_frame_time_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _fifo().leakage_energy(0.0)


class TestDoubleBufferFromModel:
    def test_scalars_come_from_sram_model(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        buf = DoubleBuffer.from_model("DB", sram)
        assert buf.write_energy_per_word == pytest.approx(
            sram.write_energy_per_word)
        assert buf.read_energy_per_word == pytest.approx(
            sram.read_energy_per_word)
        assert buf.leakage_power == pytest.approx(sram.leakage_power)
        assert buf.area == pytest.approx(sram.area)

    def test_sttram_backing_cuts_leakage(self):
        sram = DoubleBuffer.from_model(
            "S", SRAMModel(capacity_bytes=64 * units.KB, node_nm=22))
        stt = DoubleBuffer.from_model(
            "T", STTRAMModel(capacity_bytes=64 * units.KB, node_nm=22))
        assert stt.leakage_power < 0.05 * sram.leakage_power

    def test_duty_alpha_passthrough(self):
        sram = SRAMModel(capacity_bytes=8 * units.KB)
        buf = DoubleBuffer.from_model("DB", sram, duty_alpha=0.25)
        assert buf.duty_alpha == 0.25

    def test_word_packing_derived_from_word_bits(self):
        sram = SRAMModel(capacity_bytes=8 * units.KB, word_bits=64)
        buf = DoubleBuffer.from_model("DB", sram)
        assert buf.pixels_per_read_word == 8
