"""Tests for the Fig. 6 pipeline-chart rendering."""

import pytest

from repro.sim.chart import pipeline_chart
from repro.usecases import UseCaseConfig
from repro.usecases.edgaze import build_edgaze
from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


@pytest.fixture
def fig5_chart():
    return pipeline_chart(build_fig5_stages(), build_fig5_system(),
                          dict(FIG5_MAPPING), frame_rate=30)


class TestChart:
    def test_header_carries_timing(self, fig5_chart):
        header = fig5_chart.splitlines()[0]
        assert "33.3 ms" in header
        assert "T_A" in header and "T_D" in header

    def test_three_analog_slots(self, fig5_chart):
        """Exposure + readout + ADC, the Fig. 6 arrangement."""
        lines = fig5_chart.splitlines()
        labels = [line.split("|")[0].strip() for line in lines[1:]]
        assert labels[:3] == ["Exposure", "PixelArray", "ADCArray"]

    def test_every_row_has_a_bar(self, fig5_chart):
        for line in fig5_chart.splitlines()[1:]:
            bar = line.split("|")[1]
            assert "#" in bar

    def test_analog_slots_tile_the_frame(self, fig5_chart):
        """The three analog bars are disjoint and in temporal order."""
        lines = fig5_chart.splitlines()[1:4]
        starts = [line.split("|")[1].index("#") for line in lines]
        assert starts == sorted(starts)
        assert len(set(starts)) == 3

    def test_digital_at_frame_end(self, fig5_chart):
        digital = [line for line in fig5_chart.splitlines()
                   if "EdgeDetection" in line][0]
        bar = digital.split("|")[1]
        assert bar.rstrip().endswith("#")

    def test_edgaze_chart_shows_all_stages(self):
        stages, system, mapping = build_edgaze(UseCaseConfig("2D-In", 65))
        chart = pipeline_chart(stages, system, mapping, frame_rate=30)
        for name in ("Downsample", "FrameSubtract", "RoiDNN"):
            assert name in chart

    def test_custom_exposure_slots(self):
        chart = pipeline_chart(build_fig5_stages(), build_fig5_system(),
                               dict(FIG5_MAPPING), frame_rate=30,
                               exposure_slots=2)
        assert chart.count("Exposure") == 2
