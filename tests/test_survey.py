"""Tests for the CIS trend survey (Fig. 1 / Fig. 3)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.survey import (
    CIS_NODE_POINTS,
    PIXEL_PITCH_POINTS,
    SURVEY_COUNTS,
    cis_node_trend,
    irds_node,
    node_gap_by_year,
    percentages_by_year,
    pixel_pitch_trend,
)


class TestFig1Counts:
    def test_covers_2000_to_2022(self):
        years = [c.year for c in SURVEY_COUNTS]
        assert years == list(range(2000, 2023))

    def test_counts_non_negative_and_consistent(self):
        for counts in SURVEY_COUNTS:
            assert counts.imaging >= 0
            assert counts.computational >= 0
            assert counts.stacked_computational >= 0
            assert counts.total > 0

    def test_percentages_sum_to_100(self):
        for row in percentages_by_year():
            total = (row["imaging"] + row["computational"]
                     + row["stacked_computational"])
            assert total == pytest.approx(100.0)

    def test_computational_share_rises(self):
        """The paper's headline trend: increasingly computational CIS."""
        rows = percentages_by_year()
        early = sum(r["computational"] + r["stacked_computational"]
                    for r in rows[:5]) / 5
        late = sum(r["computational"] + r["stacked_computational"]
                   for r in rows[-5:]) / 5
        assert late > 2 * early

    def test_stacked_designs_emerge_late(self):
        rows = percentages_by_year()
        assert all(r["stacked_computational"] == 0 for r in rows[:10])
        assert rows[-1]["stacked_computational"] > 5


class TestFig3Scaling:
    def test_scatter_datasets_nontrivial(self):
        assert len(CIS_NODE_POINTS) > 50
        assert len(PIXEL_PITCH_POINTS) > 50

    def test_cis_node_shrinks_slowly(self):
        """CIS halving period ~9 years, far slower than CMOS's ~2 years."""
        slope, _ = cis_node_trend()
        halving_years = -1.0 / slope
        assert 6 < halving_years < 14

    def test_node_tracks_pixel_pitch(self):
        """The paper: CIS node slope follows the pixel-size slope."""
        node_slope, _ = cis_node_trend()
        pitch_slope, _ = pixel_pitch_trend()
        assert node_slope == pytest.approx(pitch_slope, rel=0.25)

    def test_irds_lookup(self):
        assert irds_node(2000) == 180
        assert irds_node(2001) == 180
        assert irds_node(2022) == 3

    def test_irds_before_roadmap_rejected(self):
        with pytest.raises(ConfigurationError):
            irds_node(1995)

    def test_gap_widens_over_time(self):
        """CIS node lags IRDS with an increasing gap after ~2000."""
        rows = node_gap_by_year()
        assert rows[0]["gap_ratio"] < rows[-1]["gap_ratio"]
        assert rows[-1]["gap_ratio"] > 10

    def test_cis_always_behind_irds_after_2004(self):
        for row in node_gap_by_year():
            if row["year"] >= 2004:
                assert row["cis_node_nm"] > row["irds_node_nm"]
