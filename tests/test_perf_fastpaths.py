"""Tests for the engine fast paths behind the event-driven simulator PR.

Covers the once-per-run mapping resolution, the cached DAG traversals,
the timeline's stage index, the memoized pre-simulation checks, and the
batch-API refinements (shared-options process batches, accurate
``workers_used``).
"""

import pytest

from repro.api import Design, SimOptions, Simulator
from repro.analysis.sweep import sweep_frame_rate
from repro.exceptions import SimulationError, StallError
from repro.sim import checks as checks_module
from repro.sim.cycle_sim import DigitalTimeline, UnitActivity
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import ProcessStage
from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_design,
    build_fig5_stages,
    build_fig5_system,
)


def _activity(stage, unit="PE", start=0.0):
    return UnitActivity(unit_name=unit, stage_name=stage, cycles=1.0,
                        start=start, duration=1.0, energy=0.0)


class TestTimelineIndex:
    def test_lookup_and_missing(self):
        timeline = DigitalTimeline(activities=[_activity("A"),
                                               _activity("B")])
        assert timeline.activity_for("B").stage_name == "B"
        with pytest.raises(SimulationError, match="no digital activity"):
            timeline.activity_for("Missing")

    def test_first_record_wins_like_the_old_scan(self):
        first = _activity("A", start=0.0)
        second = _activity("A", start=5.0)
        timeline = DigitalTimeline(activities=[first, second])
        assert timeline.activity_for("A") is first

    def test_index_sees_activities_appended_after_a_lookup(self):
        timeline = DigitalTimeline(activities=[_activity("A")])
        assert timeline.activity_for("A").stage_name == "A"
        timeline.activities.append(_activity("B"))
        assert timeline.activity_for("B").stage_name == "B"


class TestCachedTraversals:
    def test_topological_order_is_cached(self):
        graph = StageGraph(build_fig5_stages())
        assert graph.topological_order is graph.topological_order

    def test_edges_are_cached(self):
        graph = StageGraph(build_fig5_stages())
        assert graph.edges() is graph.edges()
        assert [(p.name, c.name) for p, c in graph.edges()] == [
            ("Input", "Binning"), ("Binning", "EdgeDetection")]

    def test_resolve_can_skip_validation(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        mapping = Mapping(dict(FIG5_MAPPING))
        validated = mapping.resolve(graph, system)
        fast = mapping.resolve(graph, system, validate=False)
        assert validated.keys() == fast.keys()

    def test_design_resolved_units_cached(self):
        design = build_fig5_design()
        assert design.resolved_units is design.resolved_units
        assert set(design.resolved_units) == set(FIG5_MAPPING)


class _CheckCounter:
    """Counting wrapper around run_pre_simulation_checks."""

    def __init__(self, wrapped):
        self.wrapped = wrapped
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.wrapped(*args, **kwargs)


@pytest.fixture
def check_counter(monkeypatch):
    counter = _CheckCounter(checks_module.run_pre_simulation_checks)
    monkeypatch.setattr(checks_module, "run_pre_simulation_checks", counter)
    return counter


class TestMemoizedChecks:
    def test_design_checks_run_once_across_options(self, check_counter):
        design = build_fig5_design()
        simulator = Simulator(cache=False)
        assert simulator.run(design, SimOptions(frame_rate=30)).ok
        assert simulator.run(design, SimOptions(frame_rate=60)).ok
        assert simulator.run(design, SimOptions(frame_rate=90)).ok
        assert check_counter.calls == 1

    def test_identical_designs_share_the_session_check(self, check_counter):
        simulator = Simulator(cache=False)
        assert simulator.run(build_fig5_design()).ok
        assert simulator.run(build_fig5_design()).ok  # same content hash
        assert check_counter.calls == 1

    def test_skip_checks_option_never_runs_them(self, check_counter):
        simulator = Simulator(SimOptions(skip_checks=True), cache=False)
        assert simulator.run(build_fig5_design()).ok
        assert check_counter.calls == 0

    def test_failing_checks_are_memoized_and_reraised(self):
        design = build_fig5_design()
        boom = StallError("synthetic check failure")

        calls = []

        def failing(*args, **kwargs):
            calls.append(1)
            raise boom

        original = checks_module.run_pre_simulation_checks
        checks_module.run_pre_simulation_checks = failing
        try:
            with pytest.raises(StallError):
                design.ensure_checked()
            with pytest.raises(StallError):
                design.ensure_checked()
        finally:
            checks_module.run_pre_simulation_checks = original
        assert len(calls) == 1  # the failure is cached, not re-walked

    def test_sweep_frame_rate_checks_once(self, check_counter):
        simulator = Simulator(cache=False)
        points = sweep_frame_rate(build_fig5_design, [15.0, 30.0, 60.0],
                                  simulator=simulator)
        assert all(point.feasible for point in points)
        assert check_counter.calls == 1


class TestSweepOptionsInheritance:
    def test_frame_rate_sweep_keeps_session_defaults(self):
        captured = []
        simulator = Simulator(SimOptions(exposure_slots=2))
        original = simulator.run_many

        def spying_run_many(items, options=None):
            captured.extend(items)
            return original(items, options)

        simulator.run_many = spying_run_many
        sweep_frame_rate(build_fig5_design, [15.0, 30.0],
                         simulator=simulator)
        assert [options.frame_rate for _, options in captured] == [15.0, 30.0]
        assert all(options.exposure_slots == 2 for _, options in captured)


class _CustomStage(ProcessStage):
    """A user-defined stage type the serializer doesn't know."""


def _unserializable_design() -> Design:
    stages = build_fig5_stages()
    custom = _CustomStage("EdgeDetection", input_size=(16, 16, 1),
                          kernel=(3, 3, 1), stride=(1, 1, 1),
                          padding="same")
    custom.set_input_stage(stages[1])
    return Design(stages[:2] + [custom], build_fig5_system(),
                  dict(FIG5_MAPPING))


class TestBatchWorkers:
    def test_cached_only_batch_reports_zero_workers(self):
        simulator = Simulator()
        designs = [build_fig5_design()]
        assert all(r.ok for r in simulator.run_many(designs))
        assert all(r.cached for r in simulator.run_many(designs))
        assert simulator.last_batch_stats.workers_used == 0

    def test_inline_jobs_count_the_calling_thread(self):
        simulator = Simulator(executor="process", max_workers=2)
        results = simulator.run_many([_unserializable_design()])
        assert results[0].ok
        # The unserializable design never reached the pool, but work
        # happened: the caller is reported as the one worker used.
        assert simulator.last_batch_stats.workers_used == 1

    def test_process_batch_with_uniform_options(self):
        simulator = Simulator(executor="process", max_workers=2)
        designs = [build_fig5_design(), build_fig5_design()]
        results = simulator.run_many(designs, SimOptions(frame_rate=45.0))
        assert all(result.ok for result in results)
        assert all(result.options.frame_rate == 45.0 for result in results)

    def test_process_batch_with_mixed_options(self):
        simulator = Simulator(executor="process", max_workers=2)
        design = build_fig5_design()
        items = [(design, SimOptions(frame_rate=30.0)),
                 (design, SimOptions(frame_rate=60.0))]
        results = simulator.run_many(items)
        assert all(result.ok for result in results)
        assert [result.options.frame_rate for result in results] == [30.0,
                                                                     60.0]
