"""Tests for the algorithm-to-hardware mapping."""

import pytest

from repro.exceptions import MappingError
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


class TestMappingBasics:
    def test_empty_mapping_rejected(self):
        with pytest.raises(MappingError):
            Mapping({})

    def test_empty_names_rejected(self):
        with pytest.raises(MappingError):
            Mapping({"": "PixelArray"})
        with pytest.raises(MappingError):
            Mapping({"Input": ""})

    def test_unit_name_lookup(self):
        mapping = Mapping(FIG5_MAPPING)
        assert mapping.unit_name_for("Binning") == "PixelArray"

    def test_unmapped_stage_lookup_fails(self):
        mapping = Mapping(FIG5_MAPPING)
        with pytest.raises(MappingError):
            mapping.unit_name_for("Ghost")

    def test_stages_on_expresses_hardware_reuse(self):
        mapping = Mapping(FIG5_MAPPING)
        assert sorted(mapping.stages_on("PixelArray")) == [
            "Binning", "Input"]


class TestValidation:
    def test_valid_fig5_mapping(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        Mapping(FIG5_MAPPING).validate(graph, system)

    def test_missing_stage_detected(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        incomplete = {k: v for k, v in FIG5_MAPPING.items()
                      if k != "EdgeDetection"}
        with pytest.raises(MappingError, match="unmapped"):
            Mapping(incomplete).validate(graph, system)

    def test_unknown_stage_detected(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        extra = dict(FIG5_MAPPING, Ghost="PixelArray")
        with pytest.raises(MappingError, match="unknown stages"):
            Mapping(extra).validate(graph, system)

    def test_unknown_unit_detected(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        bad = dict(FIG5_MAPPING, EdgeDetection="GhostUnit")
        with pytest.raises(Exception, match="no hardware unit"):
            Mapping(bad).validate(graph, system)

    def test_pixel_input_must_map_to_analog_array(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        bad = dict(FIG5_MAPPING, Input="EdgeUnit")
        with pytest.raises(MappingError, match="analog array"):
            Mapping(bad).validate(graph, system)

    def test_stage_cannot_map_to_memory(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        bad = dict(FIG5_MAPPING, EdgeDetection="LineBuffer")
        with pytest.raises(MappingError, match="compute unit"):
            Mapping(bad).validate(graph, system)

    def test_resolve_returns_unit_objects(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        resolved = Mapping(FIG5_MAPPING).resolve(graph, system)
        assert resolved["EdgeDetection"] is system.find_unit("EdgeUnit")
