"""Tests for the memory-technology substrate (SRAM, STT-RAM, DRAM)."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.memlib import DRAMModel, SRAMModel, STTRAMModel
from repro.memlib.sttram import MIN_CAPACITY_BYTES


class TestSRAMGeometry:
    def test_total_cells(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB)
        assert sram.total_cells == 64 * 1024 * 8

    def test_geometry_covers_capacity(self):
        sram = SRAMModel(capacity_bytes=16 * units.KB, word_bits=32)
        assert sram.num_rows * sram.num_columns >= sram.total_cells

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            SRAMModel(capacity_bytes=0)

    def test_rejects_capacity_below_word(self):
        with pytest.raises(ConfigurationError):
            SRAMModel(capacity_bytes=4, word_bits=64)


class TestSRAMEnergy:
    def test_read_energy_order_of_magnitude(self):
        """A 64 KB 65 nm macro reads at a few pJ/word — DESTINY territory."""
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=65)
        assert 0.1 * units.pJ < sram.read_energy_per_word < 50 * units.pJ

    def test_write_costs_more_than_read(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB)
        assert sram.write_energy_per_word > sram.read_energy_per_word

    def test_bigger_macro_costs_more_per_access(self):
        small = SRAMModel(capacity_bytes=4 * units.KB)
        big = SRAMModel(capacity_bytes=1 * units.MB)
        assert big.read_energy_per_word > small.read_energy_per_word

    def test_advanced_node_cheaper_access(self):
        old = SRAMModel(capacity_bytes=64 * units.KB, node_nm=65)
        new = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        assert new.read_energy_per_word < old.read_energy_per_word
        assert new.write_energy_per_word < old.write_energy_per_word

    def test_per_byte_consistent_with_per_word(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB, word_bits=64)
        assert sram.read_energy_per_byte == pytest.approx(
            sram.read_energy_per_word / 8)


class TestSRAMLeakage:
    def test_leakage_scales_with_capacity(self):
        small = SRAMModel(capacity_bytes=4 * units.KB)
        big = SRAMModel(capacity_bytes=64 * units.KB)
        assert big.leakage_power == pytest.approx(16 * small.leakage_power)

    def test_65nm_leaks_more_than_22nm(self):
        """The leakage anomaly driving the paper's Finding 1."""
        at65 = SRAMModel(capacity_bytes=64 * units.KB, node_nm=65)
        at22 = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        assert at65.leakage_power > 2 * at22.leakage_power

    def test_65nm_leaks_more_than_130nm(self):
        at65 = SRAMModel(capacity_bytes=64 * units.KB, node_nm=65)
        at130 = SRAMModel(capacity_bytes=64 * units.KB, node_nm=130)
        assert at65.leakage_power > at130.leakage_power

    def test_leakage_order_of_magnitude(self):
        """64 KB at 65 nm leaks in the hundreds of uW."""
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=65)
        assert 10 * units.uW < sram.leakage_power < 10 * units.mW


class TestSRAMArea:
    def test_area_scales_with_capacity(self):
        small = SRAMModel(capacity_bytes=4 * units.KB)
        big = SRAMModel(capacity_bytes=64 * units.KB)
        assert big.area == pytest.approx(16 * small.area)

    def test_area_scales_with_node(self):
        at65 = SRAMModel(capacity_bytes=64 * units.KB, node_nm=65)
        at22 = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        assert at22.area < at65.area

    def test_describe_mentions_capacity(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB)
        assert "64.0 KB" in sram.describe()


class TestSTTRAM:
    def test_rejects_tiny_macros(self):
        """NVMExplorer cannot model Rhythmic's 2 KB memory (Sec. 6.2)."""
        with pytest.raises(ConfigurationError, match="periphery"):
            STTRAMModel(capacity_bytes=2 * units.KB)
        assert MIN_CAPACITY_BYTES == 4 * units.KB

    def test_write_much_more_expensive_than_read(self):
        stt = STTRAMModel(capacity_bytes=64 * units.KB)
        assert stt.write_energy_per_word > 3 * stt.read_energy_per_word

    def test_leakage_nearly_zero_vs_sram(self):
        """The property the 3D-In-STT configuration exploits."""
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        stt = STTRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        assert stt.leakage_power < 0.05 * sram.leakage_power

    def test_denser_than_sram(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        stt = STTRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        assert stt.area < sram.area

    def test_read_energy_same_order_as_sram(self):
        sram = SRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        stt = STTRAMModel(capacity_bytes=64 * units.KB, node_nm=22)
        assert 0.5 < stt.read_energy_per_word / sram.read_energy_per_word < 3

    def test_per_byte_helpers(self):
        stt = STTRAMModel(capacity_bytes=64 * units.KB, word_bits=64)
        assert stt.write_energy_per_byte == pytest.approx(
            stt.write_energy_per_word / 8)

    def test_describe(self):
        assert "STT-RAM" in STTRAMModel(capacity_bytes=8 * units.KB).describe()


class TestDRAM:
    def test_access_energy_linear_in_bytes(self):
        dram = DRAMModel(capacity_bytes=8 * units.MB)
        assert dram.access_energy(200) == pytest.approx(
            2 * dram.access_energy(100))

    def test_refresh_power_scales_with_capacity(self):
        small = DRAMModel(capacity_bytes=1 * units.MB)
        big = DRAMModel(capacity_bytes=8 * units.MB)
        assert big.refresh_power == pytest.approx(8 * small.refresh_power)

    def test_access_cheaper_than_mipi(self):
        """Stacked DRAM hops must beat the 100 pJ/B MIPI link."""
        dram = DRAMModel(capacity_bytes=8 * units.MB)
        assert dram.read_energy_per_byte < 100 * units.pJ

    def test_rejects_negative_bytes(self):
        dram = DRAMModel(capacity_bytes=1 * units.MB)
        with pytest.raises(ConfigurationError):
            dram.access_energy(-1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            DRAMModel(capacity_bytes=-5)
