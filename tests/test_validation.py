"""Tests for the Fig. 7 validation suite (nine Table 2 chips)."""

import pytest

from repro import units
from repro.energy.report import Category
from repro.validation import (
    ALL_CHIPS,
    chip_by_name,
    run_chip,
    run_validation,
)


@pytest.fixture(scope="module")
def summary():
    return run_validation()


class TestChipRegistry:
    def test_nine_chips(self):
        assert len(ALL_CHIPS) == 9

    def test_table2_names(self):
        names = {chip.name for chip in ALL_CHIPS}
        assert names == {"ISSCC'17", "JSSC'19", "Sensors'20", "ISSCC'21",
                         "JSSC'21-I", "JSSC'21-II", "VLSI'21", "ISSCC'22",
                         "TCAS-I'22"}

    def test_lookup_by_name(self):
        assert chip_by_name("JSSC'21-II").process_node == "110 nm"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            chip_by_name("ISSCC'99")

    def test_process_node_diversity(self):
        """Table 2 spans 180 nm down to stacked 22 nm logic."""
        nodes = {chip.process_node for chip in ALL_CHIPS}
        assert len(nodes) >= 5

    def test_stacked_chips_present(self):
        stacked = [c for c in ALL_CHIPS if "/" in c.process_node]
        assert len(stacked) == 2  # ISSCC'21 and VLSI'21


class TestHeadlineMetrics:
    def test_mape_within_paper_ballpark(self, summary):
        """Paper reports 7.5 % MAPE; we require the same regime."""
        assert summary.mean_absolute_percentage_error < 0.15

    def test_pearson_matches_paper(self, summary):
        assert summary.pearson_correlation > 0.999

    def test_energies_span_orders_of_magnitude(self, summary):
        assert summary.energy_span_orders > 3.0

    def test_every_chip_reasonably_estimated(self, summary):
        for result in summary.results:
            assert result.absolute_percentage_error < 0.40, result.describe()

    def test_table_rendering(self, summary):
        text = summary.to_table()
        assert "MAPE" in text and "Pearson" in text


class TestKnownChipFacts:
    def test_park_headline_51pj(self):
        """JSSC'21-II's title number is the ground truth anchor."""
        chip = chip_by_name("JSSC'21-II")
        assert chip.reported_energy_per_pixel == pytest.approx(
            51 * units.pJ)
        result = run_chip(chip)
        assert result.estimated_energy_per_pixel == pytest.approx(
            51 * units.pJ, rel=0.10)

    def test_bong_leakage_dominated(self, summary):
        """ISSCC'17 at 1 FPS: 160 KB 65 nm SRAM leakage dominates."""
        result = [r for r in summary.results
                  if r.chip.name == "ISSCC'17"][0]
        breakdown = result.report.by_category()
        assert breakdown[Category.MEM_D] > 0.5 * result.report.total_energy

    def test_analog_only_chips_have_no_digital_energy(self, summary):
        for name in ("JSSC'19", "Sensors'20", "JSSC'21-I", "JSSC'21-II",
                     "TCAS-I'22"):
            result = [r for r in summary.results
                      if r.chip.name == name][0]
            assert result.report.digital_energy == 0.0, name

    def test_stacked_chips_pay_utsv(self, summary):
        for name in ("ISSCC'21", "VLSI'21"):
            result = [r for r in summary.results
                      if r.chip.name == name][0]
            assert result.report.category_energy(Category.UTSV) > 0, name

    def test_validation_excludes_offchip_transmission(self, summary):
        """Chip measurements do not include MIPI energy (Sec. 5 accounting)."""
        for result in summary.results:
            assert result.report.category_energy(Category.MIPI) == 0.0

    def test_senputing_is_cheapest(self, summary):
        cheapest = min(summary.results,
                       key=lambda r: r.estimated_energy_per_pixel)
        assert cheapest.chip.name == "TCAS-I'22"

    def test_bong_is_most_expensive(self, summary):
        priciest = max(summary.results,
                       key=lambda r: r.estimated_energy_per_pixel)
        assert priciest.chip.name == "ISSCC'17"

    def test_breakdown_per_pixel_sums_to_total(self, summary):
        for result in summary.results:
            total = sum(result.breakdown_per_pixel().values())
            assert total == pytest.approx(
                result.estimated_energy_per_pixel, rel=1e-9)


class TestComponentBreakdownErrors:
    def test_paper_quoted_component_errors_reproduced(self, summary):
        """Sec. 5's per-component mismatch figures: 0.4 % on the JSSC'19
        analog PE (detailed params published), 12.4 % on the JSSC'21-I
        pixel (no ramp-generator params), 33.3 % on the TCAS-I'22 pixel
        (no photodiode swing)."""
        by_name = {r.chip.name: r for r in summary.results}
        assert by_name["JSSC'19"].breakdown_errors()["COMP-A"] \
            == pytest.approx(0.004, abs=0.002)
        assert by_name["JSSC'21-I"].breakdown_errors()["SEN"] \
            == pytest.approx(0.124, abs=0.01)
        assert by_name["TCAS-I'22"].breakdown_errors()["SEN"] \
            == pytest.approx(0.333, abs=0.01)

    def test_chips_without_published_breakdowns_return_empty(self, summary):
        by_name = {r.chip.name: r for r in summary.results}
        assert by_name["ISSCC'21"].breakdown_errors() == {}

    def test_detailed_params_beat_educated_guesses(self, summary):
        """The paper's Sec. 5 conclusion: chips publishing circuit detail
        (JSSC'19) validate far better than educated-guess chips
        (TCAS-I'22)."""
        by_name = {r.chip.name: r for r in summary.results}
        detailed = by_name["JSSC'19"].breakdown_errors()["COMP-A"]
        guessed = by_name["TCAS-I'22"].breakdown_errors()["SEN"]
        assert detailed < 0.1 * guessed
