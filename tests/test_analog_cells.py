"""Tests for A-Cells: dynamic (Eq. 5-6), static (Eq. 7-10), non-linear (Eq. 12)."""

import math

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.cells import (
    ADCCell,
    CapacitorArray,
    ComparatorCell,
    CurrentMirrorCell,
    DynamicCell,
    FloatingDiffusion,
    NonLinearCell,
    OpAmp,
    Photodiode,
    SourceFollower,
    StaticCell,
)


class TestDynamicCell:
    def test_energy_is_sum_cv2(self):
        """Eq. 5: E = sum(C_i * Vswing_i^2)."""
        cell = DynamicCell("caps", [(10 * units.fF, 1.0),
                                    (20 * units.fF, 0.5)])
        expected = 10e-15 * 1.0 ** 2 + 20e-15 * 0.25
        assert cell.energy(1e-6) == pytest.approx(expected)

    def test_energy_independent_of_timing(self):
        cell = DynamicCell("cap", [(10 * units.fF, 1.0)])
        assert cell.energy(1e-9) == cell.energy(1e-3)
        assert cell.energy(1e-6, static_time=1.0) == cell.energy(1e-6)

    def test_for_resolution_sizes_capacitor_from_kt_c(self):
        """Eq. 6: the cap must keep 3*sigma below half an LSB."""
        cell = DynamicCell.for_resolution("cap", voltage_swing=1.0, bits=8)
        sigma = math.sqrt(units.BOLTZMANN * 300 / cell.total_capacitance)
        lsb = 1.0 / 256
        assert 3 * sigma == pytest.approx(lsb / 2)

    def test_higher_resolution_costs_more_energy(self):
        low = DynamicCell.for_resolution("c", voltage_swing=1.0, bits=6)
        high = DynamicCell.for_resolution("c", voltage_swing=1.0, bits=10)
        assert high.energy(1e-6) > low.energy(1e-6)

    def test_rejects_empty_nodes(self):
        with pytest.raises(ConfigurationError):
            DynamicCell("bad", [])

    def test_rejects_non_positive_capacitance(self):
        with pytest.raises(ConfigurationError):
            DynamicCell("bad", [(0.0, 1.0)])


class TestStaticCellDirectDrive:
    def test_energy_reduces_to_cload_vswing_vdda(self):
        """Eq. 9: for direct drive the delay cancels out."""
        cell = StaticCell.direct_drive("sf", load_capacitance=1 * units.pF,
                                       voltage_swing=1.0, vdda=1.8)
        expected = 1e-12 * 1.0 * 1.8
        assert cell.energy(1e-6) == pytest.approx(expected)
        assert cell.energy(1e-3) == pytest.approx(expected)

    def test_bias_current_from_slewing(self):
        """Eq. 8: Ibias = Cload * Vswing / t."""
        cell = StaticCell.direct_drive("sf", load_capacitance=1 * units.pF,
                                       voltage_swing=1.0)
        assert cell.bias_current(1e-6) == pytest.approx(1e-12 / 1e-6)

    def test_faster_needs_more_current(self):
        cell = StaticCell.direct_drive("sf", load_capacitance=1 * units.pF,
                                       voltage_swing=1.0)
        assert cell.bias_current(1e-9) > cell.bias_current(1e-6)


class TestStaticCellGmId:
    def test_bias_current_formula(self):
        """Eq. 10: Ibias = 2*pi*Cload*GBW/(gm/Id)."""
        cell = StaticCell.gm_id_biased("amp", load_capacitance=100 * units.fF,
                                       gain=2.0, gm_id=15.0)
        delay = 1e-6
        gbw = 2.0 / delay
        expected = 2 * math.pi * 100e-15 * gbw / 15.0
        assert cell.bias_current(delay) == pytest.approx(expected)

    def test_energy_grows_with_hold_time(self):
        """An amp held biased beyond its settling slot burns proportionally."""
        cell = StaticCell.gm_id_biased("amp", load_capacitance=100 * units.fF,
                                       gain=1.0)
        settle = 1e-6
        short = cell.energy(settle, static_time=settle)
        long = cell.energy(settle, static_time=100 * settle)
        assert long == pytest.approx(100 * short)

    def test_energy_delay_invariant_when_static_follows_delay(self):
        """Slower settling => less current but longer bias: E is constant."""
        cell = StaticCell.gm_id_biased("amp", load_capacitance=100 * units.fF,
                                       gain=2.0)
        assert cell.energy(1e-6) == pytest.approx(cell.energy(1e-3))

    def test_higher_gain_needs_more_energy(self):
        low = StaticCell.gm_id_biased("a", 100 * units.fF, gain=1.0)
        high = StaticCell.gm_id_biased("a", 100 * units.fF, gain=4.0)
        assert high.energy(1e-6) > low.energy(1e-6)

    def test_gm_id_outside_plausible_range_rejected(self):
        with pytest.raises(ConfigurationError, match="5..30"):
            StaticCell.gm_id_biased("a", 100 * units.fF, gain=1.0, gm_id=50.0)

    def test_rejects_zero_delay(self):
        cell = StaticCell.gm_id_biased("a", 100 * units.fF, gain=1.0)
        with pytest.raises(ConfigurationError):
            cell.energy(0.0)


class TestNonLinearCell:
    def test_explicit_energy_override_wins(self):
        cell = NonLinearCell("adc", bits=10,
                             energy_per_conversion=5 * units.pJ)
        assert cell.energy(1e-9) == pytest.approx(5 * units.pJ)

    def test_fom_lookup_used_when_no_override(self):
        cell = NonLinearCell("adc", bits=10)
        energy = cell.energy(1e-6)  # 1 MS/s
        assert 0.1 * units.pJ < energy < 100 * units.pJ

    def test_faster_conversion_eventually_costs_more(self):
        cell = NonLinearCell("adc", bits=10)
        slow = cell.energy(1e-6)      # 1 MS/s
        fast = cell.energy(0.2e-9)    # 5 GS/s
        assert fast > slow

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            NonLinearCell("adc", bits=0)


class TestConcreteCells:
    def test_photodiode_is_dynamic(self):
        pd = Photodiode(capacitance=10 * units.fF, voltage_swing=1.0)
        assert pd.energy(1e-6) == pytest.approx(10e-15)

    def test_floating_diffusion_smaller_than_pd(self):
        assert FloatingDiffusion().energy(1e-6) < Photodiode().energy(1e-6)

    def test_source_follower_energy(self):
        sf = SourceFollower(load_capacitance=1 * units.pF,
                            voltage_swing=1.0, vdda=1.8)
        assert sf.energy(1e-6) == pytest.approx(1e-12 * 1.8)

    def test_opamp_is_gm_id_biased(self):
        amp = OpAmp(load_capacitance=100 * units.fF, gain=2.0)
        assert amp.mode == "gm_id"

    def test_capacitor_array_scales_with_taps(self):
        small = CapacitorArray(num_capacitors=2)
        big = CapacitorArray(num_capacitors=8)
        assert big.energy(1e-6) == pytest.approx(4 * small.energy(1e-6))

    def test_capacitor_array_rejects_zero_taps(self):
        with pytest.raises(ConfigurationError):
            CapacitorArray(num_capacitors=0)

    def test_comparator_is_one_bit(self):
        assert ComparatorCell().bits == 1

    def test_adc_cell_default_ten_bits(self):
        assert ADCCell().bits == 10

    def test_current_mirror_is_static(self):
        mirror = CurrentMirrorCell()
        assert mirror.energy(1e-6) > 0
