"""Tests for the pre-simulation design checks (Fig. 4 feedback loop)."""

import pytest

from repro import units
from repro.exceptions import CheckError, DomainMismatchError, StallError
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogMAC,
    ColumnADC,
    CurrentDomainMAC,
)
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO, LineBuffer
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.hw.chip import SensorSystem
from repro.sim.checks import run_pre_simulation_checks
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


def _run(stages, system, mapping):
    graph = StageGraph(stages)
    run_pre_simulation_checks(graph, system, Mapping(mapping))


class TestHappyPath:
    def test_fig5_passes_all_checks(self):
        _run(build_fig5_stages(), build_fig5_system(), FIG5_MAPPING)


class TestDomainChecks:
    def _voltage_to_current_system(self):
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))  # outputs VOLTAGE
        macs = AnalogArray("MACs")
        macs.add_component(CurrentDomainMAC(kernel_volume=4), (1, 8))
        pixels.set_output(macs)
        system.add_analog_array(pixels)
        system.add_analog_array(macs)
        return system

    def test_voltage_into_current_consumer_rejected(self):
        source = PixelInput((8, 8, 1), name="Input")
        conv = ProcessStage("Conv", input_size=(8, 8, 1), kernel=(2, 2, 1),
                            stride=(2, 2, 1))
        conv.set_input_stage(source)
        system = self._voltage_to_current_system()
        with pytest.raises(DomainMismatchError, match="conversion"):
            _run([source, conv], system,
                 {"Input": "Pixels", "Conv": "MACs"})

    def test_unwired_analog_arrays_rejected(self):
        source = PixelInput((8, 8, 1), name="Input")
        conv = ProcessStage("Conv", input_size=(8, 8, 1), kernel=(2, 2, 1),
                            stride=(2, 2, 1))
        conv.set_input_stage(source)
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        macs = AnalogArray("MACs")
        macs.add_component(AnalogMAC(kernel_volume=4), (1, 8))
        # deliberately NOT wired
        system.add_analog_array(pixels)
        system.add_analog_array(macs)
        with pytest.raises(CheckError, match="not wired"):
            _run([source, conv], system,
                 {"Input": "Pixels", "Conv": "MACs"})

    def test_missing_adc_rejected(self):
        """Analog producer feeding a digital stage without any ADC."""
        source = PixelInput((8, 8, 1), name="Input")
        edge = ProcessStage("Edge", input_size=(8, 8, 1), kernel=(3, 3, 1),
                            stride=(1, 1, 1), padding="same")
        edge.set_input_stage(source)
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))  # VOLTAGE out
        fifo = FIFO("F", size=(1, 64), write_energy_per_word=0,
                    read_energy_per_word=0)
        unit = ComputeUnit("PE", input_pixels_per_cycle=(1, 3),
                           output_pixels_per_cycle=(1, 1),
                           energy_per_cycle=1e-12)
        pixels.set_output(fifo)
        unit.set_input(fifo)
        unit.set_sink()
        system.add_analog_array(pixels)
        system.add_memory(fifo)
        system.add_compute_unit(unit)
        with pytest.raises(DomainMismatchError, match="ADC"):
            _run([source, edge], system, {"Input": "Pixels", "Edge": "PE"})


class TestStallChecks:
    def test_too_small_line_buffer_rejected(self):
        stages = build_fig5_stages()
        system = build_fig5_system()
        # Shrink the line buffer below the 3-row kernel window.
        small = LineBuffer("LineBuffer2", size=(2, 16),
                           write_energy_per_word=0, read_energy_per_word=0)
        unit = system.find_unit("EdgeUnit")
        unit.input_memories = [small]
        system.find_unit("ADCArray").output_memories = [small]
        system.memories = [small]
        with pytest.raises(StallError, match="window"):
            _run(stages, system, FIG5_MAPPING)

    def test_narrow_line_buffer_rejected(self):
        stages = build_fig5_stages()
        system = build_fig5_system()
        narrow = LineBuffer("LineBuffer2", size=(3, 8),
                            write_energy_per_word=0, read_energy_per_word=0)
        unit = system.find_unit("EdgeUnit")
        unit.input_memories = [narrow]
        system.find_unit("ADCArray").output_memories = [narrow]
        system.memories = [narrow]
        with pytest.raises(StallError, match="wide"):
            _run(stages, system, FIG5_MAPPING)

    def test_insufficient_read_ports_rejected(self):
        stages = build_fig5_stages()
        system = build_fig5_system()
        starved = FIFO("Starved", size=(1, 64), write_energy_per_word=0,
                       read_energy_per_word=0, num_read_ports=1)
        unit = system.find_unit("EdgeUnit")  # reads 3 px/cycle
        unit.input_memories = [starved]
        system.find_unit("ADCArray").output_memories = [starved]
        system.memories = [starved]
        with pytest.raises(StallError, match="port"):
            _run(stages, system, FIG5_MAPPING)

    def test_slow_consumer_with_tiny_memory_rejected(self):
        """Producer outruns consumer and the in-between FIFO is tiny."""
        source = PixelInput((64, 64, 1), name="Input")
        fast = ProcessStage("Fast", input_size=(64, 64, 1),
                            kernel=(1, 1, 1), stride=(1, 1, 1))
        slow = ProcessStage("Slow", input_size=(64, 64, 1),
                            kernel=(1, 1, 1), stride=(1, 1, 1))
        fast.set_input_stage(source)
        slow.set_input_stage(fast)

        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 8))
        pixels.set_output(adcs)
        in_fifo = FIFO("InFifo", size=(1, 128), write_energy_per_word=0,
                       read_energy_per_word=0, num_read_ports=4,
                       num_write_ports=4)
        mid_fifo = FIFO("MidFifo", size=(1, 4), write_energy_per_word=0,
                        read_energy_per_word=0, num_read_ports=4,
                        num_write_ports=4)
        adcs.set_output(in_fifo)
        producer = ComputeUnit("FastPE", input_pixels_per_cycle=(1, 4),
                               output_pixels_per_cycle=(1, 4),
                               energy_per_cycle=1e-12)
        consumer = ComputeUnit("SlowPE", input_pixels_per_cycle=(1, 1),
                               output_pixels_per_cycle=(1, 1),
                               energy_per_cycle=1e-12)
        producer.set_input(in_fifo).set_output(mid_fifo)
        consumer.set_input(mid_fifo)
        consumer.set_sink()
        system.add_analog_array(pixels)
        system.add_analog_array(adcs)
        system.add_memory(in_fifo)
        system.add_memory(mid_fifo)
        system.add_compute_unit(producer)
        system.add_compute_unit(consumer)
        with pytest.raises(StallError, match="backlog"):
            _run([source, fast, slow], system,
                 {"Input": "Pixels", "Fast": "FastPE", "Slow": "SlowPE"})
