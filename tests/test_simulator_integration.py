"""End-to-end integration tests of simulate() on the Fig. 5 example."""

import pytest

from repro import Category, Mapping, simulate, units
from repro.exceptions import MappingError, TimingError

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


class TestFig5EndToEnd:
    def test_report_totals_positive(self, fig5_stages, fig5_system,
                                    fig5_mapping):
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30)
        assert report.total_energy > 0
        assert report.frame_time == pytest.approx(1 / 30)

    def test_eq1_decomposition(self, fig5_stages, fig5_system, fig5_mapping):
        """E_frame = E_analog + E_digital + E_comm (Eq. 1)."""
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30)
        assert report.total_energy == pytest.approx(
            report.analog_energy + report.digital_energy
            + report.communication_energy)

    def test_expected_categories_present(self, fig5_stages, fig5_system,
                                         fig5_mapping):
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30)
        rollup = report.by_category()
        assert {Category.SEN, Category.COMP_D, Category.MEM_D,
                Category.MIPI} <= set(rollup)

    def test_mipi_bytes_match_edge_output(self, fig5_stages, fig5_system,
                                          fig5_mapping):
        """16x16 8-bit edge map -> 256 B over MIPI at 100 pJ/B."""
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30)
        assert report.category_energy(Category.MIPI) == pytest.approx(
            256 * 100 * units.pJ)

    def test_timing_consistency(self, fig5_stages, fig5_system,
                                fig5_mapping):
        """3 * T_A + T_D = T_FR (Fig. 6)."""
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30)
        assert 3 * report.analog_stage_delay + report.digital_latency \
            == pytest.approx(report.frame_time)

    def test_higher_fps_increases_analog_energy(self, fig5_stages,
                                                fig5_system, fig5_mapping):
        """Faster frames squeeze ADC conversions into less time, raising
        energy once the FoM corner is crossed — and never lowering it."""
        slow = simulate(fig5_stages, fig5_system, fig5_mapping,
                        frame_rate=30)
        fast = simulate(fig5_stages, fig5_system, fig5_mapping,
                        frame_rate=10000)
        assert fast.category_energy(Category.SEN) >= slow.category_energy(
            Category.SEN) * 0.99

    def test_cycle_accurate_mode(self, fig5_stages, fig5_system,
                                 fig5_mapping):
        analytical = simulate(fig5_stages, fig5_system, fig5_mapping,
                              frame_rate=30)
        exact = simulate(build_fig5_stages(), build_fig5_system(),
                         dict(FIG5_MAPPING), frame_rate=30,
                         cycle_accurate=True)
        assert exact.digital_latency == pytest.approx(
            analytical.digital_latency, rel=0.05)

    def test_impossible_fps_raises(self, fig5_stages, fig5_system,
                                   fig5_mapping):
        with pytest.raises(TimingError):
            simulate(fig5_stages, fig5_system, fig5_mapping,
                     frame_rate=1e7)

    def test_mapping_object_accepted(self, fig5_stages, fig5_system):
        report = simulate(fig5_stages, fig5_system, Mapping(FIG5_MAPPING),
                          frame_rate=30)
        assert report.total_energy > 0

    def test_incomplete_mapping_rejected(self, fig5_stages, fig5_system):
        with pytest.raises(MappingError):
            simulate(fig5_stages, fig5_system, {"Input": "PixelArray"},
                     frame_rate=30)

    def test_skip_checks_escape_hatch(self, fig5_stages, fig5_system,
                                      fig5_mapping):
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30, skip_checks=True)
        assert report.total_energy > 0

    def test_component_names_qualified(self, fig5_stages, fig5_system,
                                       fig5_mapping):
        report = simulate(fig5_stages, fig5_system, fig5_mapping,
                          frame_rate=30)
        names = set(report.by_component())
        assert "PixelArray/BinningPixel" in names
        assert "ADCArray/ADC" in names
