"""Tests for the pass-level incremental simulation engine.

The engine (:mod:`repro.sim.simulator`) runs as declared passes
(:data:`SIM_PASSES`); design-only passes memoize per design, so option
sweeps re-run only the option-dependent passes — and the result must be
bit-identical to the pre-split monolithic body, which is kept as
:func:`_simulate_graph_monolithic` exactly for these assertions.
"""

import pytest

from repro.api import Design, SimOptions, Simulator
from repro.sim.simulator import (
    SIM_PASSES,
    PassCounters,
    PassMemo,
    _simulate_graph,
    _simulate_graph_monolithic,
)
from repro.usecases import UseCaseConfig, build_edgaze, build_rhythmic
from repro.usecases.fig5 import build_fig5_design

_DESIGN_ONLY = {"resolve", "checks", "timeline", "cycle_sim",
                "analog_usage", "comm_energy"}
_OPTION_DEPENDENT = {"timing", "analog_energy", "digital_energy"}


class TestPassDeclarations:
    def test_every_pass_declares_reads(self):
        assert {spec.name for spec in SIM_PASSES} \
            == _DESIGN_ONLY | _OPTION_DEPENDENT
        for spec in SIM_PASSES:
            assert spec.reads, spec.name
            assert "design" in spec.reads, spec.name

    def test_design_only_classification(self):
        for spec in SIM_PASSES:
            assert spec.design_only == (spec.name in _DESIGN_ONLY), \
                spec.name

    def test_option_passes_name_their_option_fields(self):
        fields = set(SimOptions().to_dict())
        for spec in SIM_PASSES:
            if spec.design_only:
                continue
            option_reads = {read.split(".", 1)[1] for read in spec.reads
                            if read.startswith("options.")}
            assert option_reads, spec.name
            assert option_reads <= fields, spec.name


class TestPassMemo:
    def test_memoizes_and_counts_once(self):
        memo, counters = PassMemo(), PassCounters()
        calls = []
        compute = lambda: calls.append(1) or "value"  # noqa: E731
        assert memo.get_or_run("timeline", compute, counters) == "value"
        assert memo.get_or_run("timeline", compute, counters) == "value"
        assert len(calls) == 1
        assert counters.snapshot() == {"timeline": 1}
        assert memo.known_passes() == ("timeline",)

    def test_failures_are_not_cached(self):
        memo = PassMemo()
        calls = []

        def explode():
            calls.append(1)
            raise ValueError("boom")

        for _ in range(2):
            with pytest.raises(ValueError):
                memo.get_or_run("timeline", explode, None)
        assert len(calls) == 2
        assert memo.known_passes() == ()


class _Sweeps:
    """Shared sweep fixtures: (options list, design builder)."""

    FRAME_RATES = [15.0, 30.0, 60.0, 120.0]
    SLOTS = [1, 2, 3]


class TestMonolithicEquivalence(_Sweeps):
    """Acceptance: bit-identical EnergyReports vs the pre-split body."""

    def _assert_equivalent(self, design, options):
        monolithic = _simulate_graph_monolithic(
            design.graph, design.system, design.mapping,
            frame_rate=options.frame_rate,
            exposure_slots=options.exposure_slots,
            cycle_accurate=options.cycle_accurate)
        session = Simulator(cache=False)
        split = session.run(design, options).unwrap()
        assert split.to_dict() == monolithic.to_dict()

    @pytest.mark.parametrize("builder", [
        build_fig5_design,
        lambda: build_rhythmic(UseCaseConfig("2D-In", 65)),
        lambda: build_edgaze(UseCaseConfig("3D-In", 65)),
    ], ids=["fig5", "rhythmic", "edgaze"])
    def test_frame_rate_sweep_bit_identical(self, builder):
        design = builder()
        session = Simulator(cache=False)
        for rate in self.FRAME_RATES:
            options = SimOptions(frame_rate=rate)
            monolithic = _simulate_graph_monolithic(
                design.graph, design.system, design.mapping,
                frame_rate=rate)
            assert session.run(design, options).unwrap().to_dict() \
                == monolithic.to_dict()

    def test_exposure_slot_sweep_bit_identical(self):
        design = build_fig5_design()
        session = Simulator(cache=False)
        for slots in self.SLOTS:
            options = SimOptions(exposure_slots=slots)
            monolithic = _simulate_graph_monolithic(
                design.graph, design.system, design.mapping,
                frame_rate=30.0, exposure_slots=slots)
            assert session.run(design, options).unwrap().to_dict() \
                == monolithic.to_dict()

    def test_cycle_accurate_bit_identical(self):
        self._assert_equivalent(build_fig5_design(),
                                SimOptions(cycle_accurate=True))

    def test_legacy_simulate_wrapper_bit_identical(self):
        from repro import simulate

        design = build_fig5_design()
        monolithic = _simulate_graph_monolithic(
            design.graph, design.system, design.mapping, frame_rate=45.0)
        wrapped = simulate(design.graph, design.system, design.mapping,
                           frame_rate=45.0)
        assert wrapped.to_dict() == monolithic.to_dict()


class TestIncrementalReruns(_Sweeps):
    """Acceptance: option sweeps re-run only option-dependent passes."""

    def test_frame_rate_sweep_runs_design_passes_once(self):
        design = build_fig5_design()
        session = Simulator(cache=False)
        for rate in self.FRAME_RATES:
            assert session.run(design, SimOptions(frame_rate=rate)).ok
        runs = session.pass_info()
        n = len(self.FRAME_RATES)
        assert runs["timeline"] == 1
        assert runs["analog_usage"] == 1
        assert runs["comm_energy"] == 1
        assert "cycle_sim" not in runs
        assert runs["timing"] == n
        assert runs["analog_energy"] == n
        assert runs["digital_energy"] == n

    def test_exposure_slot_sweep_runs_design_passes_once(self):
        design = build_fig5_design()
        session = Simulator(cache=False)
        for slots in self.SLOTS:
            assert session.run(design, SimOptions(exposure_slots=slots)).ok
        runs = session.pass_info()
        assert runs["timeline"] == 1
        assert runs["timing"] == len(self.SLOTS)

    def test_cycle_accurate_latency_memoized_across_rates(self):
        design = build_fig5_design()
        session = Simulator(cache=False)
        for rate in (30.0, 60.0):
            result = session.run(design, SimOptions(frame_rate=rate,
                                                    cycle_accurate=True))
            assert result.ok
        assert session.pass_info()["cycle_sim"] == 1

    def test_independently_built_twins_share_one_memo(self):
        """Memoization keys on content hash, not object identity."""
        session = Simulator(cache=False)
        assert session.run(build_fig5_design()).ok
        assert session.run(build_fig5_design(),
                           SimOptions(frame_rate=60.0)).ok
        assert session.pass_info()["timeline"] == 1

    def test_distinct_designs_do_not_share(self):
        session = Simulator(cache=False)
        assert session.run(build_rhythmic(UseCaseConfig("2D-In", 65))).ok
        assert session.run(build_rhythmic(UseCaseConfig("2D-Off", 65))).ok
        assert session.pass_info()["timeline"] == 2

    def test_run_many_sweep_is_incremental_too(self):
        design = build_fig5_design()
        session = Simulator(cache=False)
        items = [(design, SimOptions(frame_rate=rate))
                 for rate in self.FRAME_RATES]
        assert all(result.ok for result in session.run_many(items))
        runs = session.pass_info()
        assert runs["timeline"] == 1
        assert runs["timing"] == len(self.FRAME_RATES)

    def test_unserializable_design_uses_its_object_memo(self):
        from repro.sw.stage import ProcessStage
        from repro.usecases.fig5 import (FIG5_MAPPING, build_fig5_stages,
                                         build_fig5_system)

        class Custom(ProcessStage):
            pass

        stages = build_fig5_stages()
        custom = Custom("EdgeDetection", input_size=(16, 16, 1),
                        kernel=(3, 3, 1), stride=(1, 1, 1), padding="same")
        custom.set_input_stage(stages[1])
        design = Design(stages[:2] + [custom], build_fig5_system(),
                        dict(FIG5_MAPPING))
        session = Simulator()
        for rate in (30.0, 60.0):
            assert session.run(design, SimOptions(frame_rate=rate)).ok
        assert session.pass_info()["timeline"] == 1
        assert design.pass_memo.known_passes()  # memo lives on the object

    def test_standalone_engine_calls_stay_independent(self):
        """Without a memo, every call recomputes — the legacy contract."""
        design = build_fig5_design()
        counters = PassCounters()
        for rate in (30.0, 60.0):
            _simulate_graph(design.graph, design.system, design.mapping,
                            frame_rate=rate, counters=counters)
        assert counters.snapshot()["timeline"] == 2

    def test_shared_memo_threads_compute_each_pass_once(self):
        """Concurrent same-design jobs serialize per memo, not per run."""
        design = build_fig5_design()
        session = Simulator(cache=False, max_workers=4)
        items = [(design, SimOptions(frame_rate=float(rate)))
                 for rate in range(20, 40)]
        assert all(result.ok for result in session.run_many(items))
        runs = session.pass_info()
        assert runs["timeline"] == 1
        assert runs["timing"] == len(items)
