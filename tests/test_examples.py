"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
_EXAMPLES = sorted(_EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", _EXAMPLES,
                         ids=[p.stem for p in _EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    """The deliverable floor: quickstart plus domain scenarios."""
    names = {p.stem for p in _EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
