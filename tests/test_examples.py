"""Smoke tests: every shipped example must run cleanly end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
_EXAMPLES_DIR = _REPO_ROOT / "examples"
_EXAMPLES = sorted(_EXAMPLES_DIR.glob("*.py"))


def _env_with_src():
    """The examples need ``src`` importable even without `pip install -e .`."""
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        [src, existing])
    return env


@pytest.mark.parametrize("script", _EXAMPLES,
                         ids=[p.stem for p in _EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=240, env=_env_with_src())
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    """The deliverable floor: quickstart plus domain scenarios."""
    names = {p.stem for p in _EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
