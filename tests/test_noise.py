"""Tests for the functional (noise-aware) simulation substrate."""

import numpy as np
import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.noise import (
    DarkCurrentNoise,
    FixedPatternNoise,
    FunctionalPipeline,
    FunctionalPixel,
    PhotonShotNoise,
    QuantizationNoise,
    ReadNoise,
    snr_db,
    thermal_noise_sigma,
)


class TestPhotonShotNoise:
    def test_poisson_statistics(self):
        source = PhotonShotNoise(seed=1)
        scene = np.full((400, 400), 1000.0)
        noisy = source.apply(scene)
        assert np.mean(noisy) == pytest.approx(1000.0, rel=0.01)
        assert np.var(noisy) == pytest.approx(1000.0, rel=0.05)

    def test_rejects_negative_signal(self):
        with pytest.raises(ConfigurationError):
            PhotonShotNoise().apply(np.array([-1.0]))

    def test_reseed_reproducible(self):
        source = PhotonShotNoise(seed=7)
        scene = np.full((16, 16), 100.0)
        first = source.apply(scene)
        source.reseed(7)
        second = source.apply(scene)
        assert np.array_equal(first, second)


class TestDarkCurrent:
    def test_mean_scales_with_exposure(self):
        short = DarkCurrentNoise(10.0, exposure_time=0.01)
        long = DarkCurrentNoise(10.0, exposure_time=0.1)
        assert long.mean_dark_electrons == pytest.approx(
            10 * short.mean_dark_electrons)

    def test_doubles_with_temperature(self):
        """The thermal mechanism of Sec. 6.2: hotter stack, more noise."""
        cool = DarkCurrentNoise(10.0, 0.033, temperature=300.0)
        hot = DarkCurrentNoise(10.0, 0.033, temperature=307.0)
        assert hot.mean_dark_electrons == pytest.approx(
            2 * cool.mean_dark_electrons)

    def test_adds_positive_bias(self):
        source = DarkCurrentNoise(100.0, 1.0, seed=2)
        scene = np.zeros((100, 100))
        noisy = source.apply(scene)
        assert np.mean(noisy) == pytest.approx(100.0, rel=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DarkCurrentNoise(-1.0, 0.01)
        with pytest.raises(ConfigurationError):
            DarkCurrentNoise(1.0, 0.0)


class TestReadNoise:
    def test_gaussian_sigma(self):
        source = ReadNoise(5.0, seed=3)
        scene = np.full((300, 300), 100.0)
        noisy = source.apply(scene)
        assert np.std(noisy - scene) == pytest.approx(5.0, rel=0.03)

    def test_zero_sigma_is_identity(self):
        source = ReadNoise(0.0)
        scene = np.full((8, 8), 42.0)
        assert np.array_equal(source.apply(scene), scene)


class TestFixedPatternNoise:
    def test_pattern_is_static_across_frames(self):
        source = FixedPatternNoise(offset_sigma_electrons=3.0, seed=4)
        scene = np.full((32, 32), 100.0)
        first = source.apply(scene)
        second = source.apply(scene)
        assert np.array_equal(first, second)

    def test_gain_mismatch_scales_with_signal(self):
        source = FixedPatternNoise(gain_sigma_fraction=0.05, seed=5)
        dim = source.apply(np.full((64, 64), 100.0))
        bright = source.apply(np.full((64, 64), 1000.0))
        assert np.std(bright) == pytest.approx(10 * np.std(dim), rel=0.01)


class TestQuantization:
    def test_lsb_size(self):
        adc = QuantizationNoise(bits=10, full_scale_electrons=1024.0)
        assert adc.lsb_electrons == pytest.approx(1.0)

    def test_quantizes_to_codes(self):
        adc = QuantizationNoise(bits=2, full_scale_electrons=4.0)
        out = adc.apply(np.array([0.4, 1.6, 3.9, 10.0]))
        assert np.array_equal(out, np.array([0.0, 2.0, 4.0, 4.0]))

    def test_more_bits_less_error(self):
        scene = np.linspace(0, 1000, 1000)
        coarse = QuantizationNoise(bits=4, full_scale_electrons=1000.0)
        fine = QuantizationNoise(bits=12, full_scale_electrons=1000.0)
        coarse_err = np.abs(coarse.apply(scene) - scene).mean()
        fine_err = np.abs(fine.apply(scene) - scene).mean()
        assert fine_err < coarse_err / 10


class TestThermalNoiseSigma:
    def test_links_eq6_to_electrons(self):
        sigma_e = thermal_noise_sigma(10 * units.fF,
                                      conversion_gain_uv_per_e=50.0)
        sigma_v = units.thermal_noise_voltage(10 * units.fF)
        assert sigma_e == pytest.approx(sigma_v / 50e-6)

    def test_rejects_bad_gain(self):
        with pytest.raises(ConfigurationError):
            thermal_noise_sigma(10 * units.fF, conversion_gain_uv_per_e=0.0)


class TestFunctionalPipeline:
    def _pipeline(self, **pixel_kwargs):
        pixel = FunctionalPixel(**pixel_kwargs)
        return FunctionalPipeline(pixel, exposure_time=1 / 30, seed=11)

    def test_capture_preserves_mean_signal(self):
        pipeline = self._pipeline()
        scene = np.full((64, 64), 2000.0)
        captured = pipeline.capture(scene)
        assert np.mean(captured) == pytest.approx(2000.0, rel=0.05)

    def test_snr_improves_with_light(self):
        """Shot-noise-limited imaging: SNR grows with illumination."""
        pipeline = self._pipeline()
        assert pipeline.measure_snr(5000) > pipeline.measure_snr(100)

    def test_hotter_sensor_lower_snr_in_the_dark(self):
        """The Sec. 6.2 thermal argument made quantitative."""
        cool = self._pipeline(temperature=300.0,
                              dark_current_e_per_s=2000.0)
        hot = self._pipeline(temperature=321.0,
                             dark_current_e_per_s=2000.0)
        assert hot.measure_snr(50) < cool.measure_snr(50)

    def test_dynamic_range_reasonable(self):
        """A healthy CIS pixel has 50-80 dB of dynamic range."""
        dr = self._pipeline().dynamic_range_db()
        assert 50 < dr < 90

    def test_rejects_negative_scene(self):
        with pytest.raises(ConfigurationError):
            self._pipeline().capture(np.array([-1.0]))


class TestVectorizedCaptureStack:
    def _pipeline(self, **pixel_kwargs):
        pixel = FunctionalPixel(**pixel_kwargs)
        return FunctionalPipeline(pixel, exposure_time=1 / 30, seed=11)

    def test_stack_shape_and_validation(self):
        pipeline = self._pipeline()
        stack = pipeline.capture_stack(np.full((16, 16), 500.0), 6)
        assert stack.shape == (6, 16, 16)
        with pytest.raises(ConfigurationError):
            pipeline.capture_stack(np.full((4, 4), 10.0), 0)
        with pytest.raises(ConfigurationError):
            pipeline.capture_stack(np.array([-1.0]), 2)

    def test_fpn_pattern_is_shared_across_stacked_frames(self):
        """The stack draw must not fabricate a fresh pattern per frame."""
        source = FixedPatternNoise(offset_sigma_electrons=5.0, seed=4)
        stack = source.apply_stack(np.zeros((5, 32, 32)))
        for frame in stack[1:]:
            assert np.array_equal(frame, stack[0])
        # ... and it is the same pattern single-frame capture applies.
        assert np.array_equal(source.apply(np.zeros((32, 32))), stack[0])

    def test_stack_statistics_match_frame_by_frame_loop(self):
        """Vectorized draws preserve the seeded per-frame statistics.

        The RNG streams are consumed in one block per source, so exact
        values differ from a sequential loop of capture() calls; the
        moments the SNR estimate is built from must agree within
        sampling tolerance.
        """
        looped = self._pipeline()
        scene = np.full((64, 64), 2000.0)
        loop_stack = np.stack([looped.capture(scene) for _ in range(16)])
        vector_stack = self._pipeline().capture_stack(scene, 16)
        assert np.mean(vector_stack) \
            == pytest.approx(np.mean(loop_stack), rel=0.01)
        loop_sigma = np.mean(np.std(loop_stack, axis=0))
        vector_sigma = np.mean(np.std(vector_stack, axis=0))
        assert vector_sigma == pytest.approx(loop_sigma, rel=0.10)

    def test_measure_snr_matches_loop_within_tolerance(self):
        vectorized = self._pipeline().measure_snr(2000.0, num_frames=16)
        looped = self._pipeline()
        scene = np.full((64, 64), 2000.0)
        stack = np.stack([looped.capture(scene) for _ in range(16)])
        reference = snr_db(2000.0,
                           float(np.mean(np.std(stack, axis=0))))
        assert vectorized == pytest.approx(reference, abs=1.0)  # dB

    def test_measure_snr_deterministic_for_a_seed(self):
        assert self._pipeline().measure_snr(2000.0) \
            == self._pipeline().measure_snr(2000.0)


class TestSnrDb:
    def test_20db_per_decade(self):
        assert snr_db(1000, 10) == pytest.approx(40.0)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ConfigurationError):
            snr_db(0, 1)
        with pytest.raises(ConfigurationError):
            snr_db(1, 0)
