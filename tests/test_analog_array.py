"""Tests for Analog Functional Arrays (Eq. 2-3)."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogMAC,
    ColumnADC,
    PassiveAnalogMemory,
)
from repro.hw.analog.domain import SignalDomain
from repro.hw.digital.memory import FIFO


def _pixel_array(rows=16, cols=16, shared=1):
    array = AnalogArray("PixelArray")
    array.add_component(ActivePixelSensor(num_shared_pixels=shared),
                        (rows, cols))
    return array


class TestConstruction:
    def test_component_count(self):
        assert _pixel_array(16, 16).num_components == 256

    def test_duplicate_component_rejected(self):
        array = AnalogArray("A")
        array.add_component(ColumnADC("ADC"), (1, 4))
        with pytest.raises(ConfigurationError, match="duplicate"):
            array.add_component(ColumnADC("ADC"), (1, 2))

    def test_zero_count_rejected(self):
        array = AnalogArray("A")
        with pytest.raises(ConfigurationError):
            array.add_component(ColumnADC(), (0, 4))

    def test_self_wiring_rejected(self):
        array = _pixel_array()
        with pytest.raises(ConfigurationError):
            array.set_output(array)

    def test_empty_array_has_no_domains(self):
        array = AnalogArray("empty")
        with pytest.raises(ConfigurationError):
            _ = array.input_domain


class TestDomains:
    def test_domains_follow_component_chain(self):
        array = _pixel_array()
        assert array.input_domain is SignalDomain.OPTICAL
        assert array.output_domain is SignalDomain.VOLTAGE

    def test_category_sensing_for_pixels(self):
        assert _pixel_array().category == "sensing"

    def test_category_sensing_for_adcs(self):
        array = AnalogArray("ADCs")
        array.add_component(ColumnADC(), (1, 16))
        assert array.category == "sensing"

    def test_category_compute_for_macs(self):
        array = AnalogArray("PEs")
        array.add_component(AnalogMAC(kernel_volume=9), (1, 16))
        assert array.category == "compute"

    def test_category_explicit_override(self):
        array = AnalogArray("Buf", category="memory")
        array.add_component(PassiveAnalogMemory(), (100, 100))
        assert array.category == "memory"

    def test_invalid_category_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalogArray("Bad", category="magic")


class TestAccessCounting:
    def test_eq3_even_division(self):
        """Access count = ops / component count (Eq. 3)."""
        array = _pixel_array(16, 16)
        counts = array.component_access_counts(1024)
        assert counts["APS"] == pytest.approx(4.0)

    def test_zero_ops_allowed(self):
        counts = _pixel_array().component_access_counts(0)
        assert counts["APS"] == 0

    def test_negative_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            _pixel_array().component_access_counts(-1)


class TestEnergy:
    def test_energy_linear_in_ops_for_dynamic_parts(self):
        """ADC FoM at fixed per-access delay: twice the conversions at the
        same rate cost exactly twice."""
        array = AnalogArray("ADCs")
        array.add_component(ColumnADC(energy_per_conversion=1 * units.pJ),
                            (1, 16))
        delay = 1e-3
        assert array.energy(3200, delay) == pytest.approx(
            2 * array.energy(1600, delay))

    def test_parallelism_lowers_adc_energy(self):
        """More ADC columns => each converts slower => lower FoM energy.

        This is the column-parallel vs chip-serial design contrast CamJ
        resolves through per-access delay allocation.  The effect shows
        where the serial converter is pushed above the Walden FoM corner
        (~100 MS/s) while the parallel columns stay below it.
        """
        serial = AnalogArray("OneADC")
        serial.add_component(ColumnADC(), (1, 1))
        parallel = AnalogArray("ColumnADCs")
        parallel.add_component(ColumnADC(), (1, 640))
        ops = 640 * 400
        delay = 0.5e-3  # serial: 512 MS/s (above corner); parallel: 800 kS/s
        assert parallel.energy(ops, delay) < serial.energy(ops, delay)

    def test_breakdown_covers_all_components(self):
        array = AnalogArray("Mixed")
        array.add_component(ActivePixelSensor(), (16, 16))
        array.add_component(ColumnADC(), (1, 16))
        breakdown = array.energy_breakdown(256, 1e-3)
        assert set(breakdown) == {"APS", "ADC"}
        assert all(v > 0 for v in breakdown.values())

    def test_underutilized_component_idles(self):
        """ops < components: per-access delay capped at the array delay."""
        array = AnalogArray("Wide")
        array.add_component(ColumnADC(energy_per_conversion=None), (1, 1000))
        energy = array.energy(10, 1e-3)
        assert energy > 0

    def test_rejects_non_positive_delay(self):
        with pytest.raises(ConfigurationError):
            _pixel_array().energy(100, 0.0)


class TestWiring:
    def test_array_to_array(self):
        pixels = _pixel_array()
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 16))
        pixels.set_output(adcs)
        assert adcs in pixels.output_arrays
        assert pixels in adcs.input_arrays

    def test_array_to_memory(self):
        pixels = _pixel_array()
        fifo = FIFO("F", size=(1, 64), write_energy_per_word=1e-12,
                    read_energy_per_word=1e-12)
        pixels.set_output(fifo)
        assert fifo in pixels.output_memories
        assert pixels.output_arrays == []

    def test_idempotent_wiring(self):
        pixels = _pixel_array()
        adcs = AnalogArray("ADCs")
        adcs.add_component(ColumnADC(), (1, 16))
        pixels.set_output(adcs)
        pixels.set_output(adcs)
        assert len(pixels.output_arrays) == 1

    def test_describe(self):
        text = _pixel_array().describe()
        assert "PixelArray" in text and "APS" in text
