"""Tests for the extended A-Component library."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.domain import SignalDomain
from repro.hw.analog.extended import (
    CorrelatedDoubleSampler,
    PassiveMatrixMultiplier,
    ProgrammableGainAmplifier,
    SingleSlopeADC,
)


class TestPassiveMatrixMultiplier:
    def test_energy_is_pure_dynamic(self):
        """No OpAmp: the Lee & Wong design is charge redistribution only."""
        matmul = PassiveMatrixMultiplier(rows=4, cols=4,
                                         unit_capacitance=5 * units.fF,
                                         voltage_swing=1.0)
        expected = 16 * 5e-15 * 1.0 ** 2
        assert matmul.energy_per_access(1e-6) == pytest.approx(expected)
        # Timing-independent: passive circuits have no bias current.
        assert matmul.energy_per_access(1e-3) == pytest.approx(expected)

    def test_energy_scales_with_matrix_size(self):
        small = PassiveMatrixMultiplier(rows=2, cols=2)
        big = PassiveMatrixMultiplier(rows=4, cols=4)
        assert big.energy_per_access(1e-6) == pytest.approx(
            4 * small.energy_per_access(1e-6))

    def test_cheaper_than_active_mac_per_op(self):
        """The passive design's selling point."""
        from repro.hw.analog.components import AnalogMAC
        passive = PassiveMatrixMultiplier(rows=3, cols=3)
        active = AnalogMAC(kernel_volume=9, include_opamp=True)
        assert passive.energy_per_access(1e-5) \
            < active.energy_per_access(1e-5)

    def test_shapes(self):
        matmul = PassiveMatrixMultiplier(rows=3, cols=5)
        assert matmul.input_volume == 5
        assert matmul.output_volume == 3

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            PassiveMatrixMultiplier(rows=0, cols=4)


class TestPGA:
    def test_higher_gain_costs_more(self):
        low = ProgrammableGainAmplifier(gain=2.0)
        high = ProgrammableGainAmplifier(gain=8.0)
        assert high.energy_per_access(1e-6) > low.energy_per_access(1e-6)

    def test_voltage_in_voltage_out(self):
        pga = ProgrammableGainAmplifier()
        assert pga.input_domain is SignalDomain.VOLTAGE
        assert pga.output_domain is SignalDomain.VOLTAGE

    def test_rejects_non_positive_gain(self):
        with pytest.raises(ConfigurationError):
            ProgrammableGainAmplifier(gain=0.0)


class TestSingleSlopeADC:
    def test_crosses_to_digital(self):
        adc = SingleSlopeADC()
        assert adc.output_domain is SignalDomain.DIGITAL

    def test_energy_exponential_in_bits_via_counter(self):
        """Each extra bit doubles the ramp steps (counter term)."""
        slow = SingleSlopeADC(bits=8, comparator_bias=1e-9,
                              counter_energy_per_step=10 * units.fJ)
        fast = SingleSlopeADC(bits=10, comparator_bias=1e-9,
                              counter_energy_per_step=10 * units.fJ)
        delay = 1e-6
        # With negligible comparator bias, counter dominates: 4x steps.
        assert fast.energy_per_access(delay) == pytest.approx(
            4 * slow.energy_per_access(delay), rel=0.05)

    def test_slower_conversion_costs_more(self):
        """Opposite to the Walden-FoM trend — the comparator stays biased
        for the whole (longer) ramp."""
        adc = SingleSlopeADC(bits=10, comparator_bias=1 * units.uA,
                             counter_energy_per_step=0.0)
        assert adc.energy_per_access(1e-3) > adc.energy_per_access(1e-5)

    def test_plausible_10bit_energy(self):
        """A 10-bit single-slope at a 10 us line time: tens of pJ."""
        adc = SingleSlopeADC(bits=10)
        energy = adc.energy_per_access(10e-6)
        assert 1 * units.pJ < energy < 200 * units.pJ

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SingleSlopeADC(bits=0)
        with pytest.raises(ConfigurationError):
            SingleSlopeADC(comparator_bias=0.0)
        with pytest.raises(ConfigurationError):
            SingleSlopeADC(counter_energy_per_step=-1.0)


class TestCDS:
    def test_samples_twice(self):
        cds = CorrelatedDoubleSampler()
        caps_usage = cds.cell_usages[0]
        assert caps_usage.temporal == 2

    def test_energy_positive_and_plausible(self):
        cds = CorrelatedDoubleSampler()
        energy = cds.energy_per_access(1e-5)
        assert 0.01 * units.pJ < energy < 100 * units.pJ

    def test_usable_in_array(self):
        from repro.hw.analog.array import AnalogArray
        array = AnalogArray("CDSArray")
        array.add_component(CorrelatedDoubleSampler(), (1, 640))
        assert array.category == "compute"
        assert array.energy(640 * 480, 5e-3) > 0
