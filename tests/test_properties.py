"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.energy.report import Category, EnergyEntry, EnergyReport
from repro.hw.analog.adc_fom import adc_energy_per_conversion, walden_fom
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.cells import DynamicCell, StaticCell
from repro.hw.analog.components import ColumnADC
from repro.hw.digital.memory import FIFO
from repro.memlib import SRAMModel
from repro.sim.delay import estimate_frame_timing
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage
from repro.sw.stencil import stencil_ops, stencil_output_size
from repro.tech import SUPPORTED_NODES, scale_energy, scale_leakage_power
from repro.exceptions import TimingError

nodes = st.sampled_from(SUPPORTED_NODES)
dims = st.integers(min_value=1, max_value=256)
small_dims = st.integers(min_value=1, max_value=16)


class TestStencilProperties:
    @given(in_h=dims, in_w=dims, k=small_dims, s=small_dims)
    def test_valid_output_never_exceeds_input(self, in_h, in_w, k, s):
        if k > in_h or k > in_w:
            return
        out = stencil_output_size((in_h, in_w, 1), (k, k, 1), (s, s, 1))
        assert 1 <= out[0] <= in_h
        assert 1 <= out[1] <= in_w

    @given(in_h=dims, in_w=dims, k=small_dims, s=small_dims)
    def test_same_padding_is_ceil_division(self, in_h, in_w, k, s):
        if k > in_h or k > in_w:
            return
        out = stencil_output_size((in_h, in_w, 1), (k, k, 1), (s, s, 1),
                                  padding="same")
        assert out[0] == -(-in_h // s)
        assert out[1] == -(-in_w // s)

    @given(out_h=dims, out_w=dims, k=small_dims)
    def test_ops_equal_outputs_times_kernel_volume(self, out_h, out_w, k):
        ops = stencil_ops((out_h, out_w, 1), (k, k, 1))
        assert ops == out_h * out_w * k * k

    @given(in_h=dims, k=small_dims)
    def test_stride_one_valid_conv_arithmetic(self, in_h, k):
        if k > in_h:
            return
        out = stencil_output_size((in_h, in_h, 1), (k, k, 1), (1, 1, 1))
        assert out[0] == in_h - k + 1


class TestThermalNoiseProperties:
    @given(bits=st.integers(min_value=1, max_value=16),
           swing=st.floats(min_value=0.1, max_value=3.3))
    def test_sized_capacitor_meets_the_noise_budget(self, bits, swing):
        """Eq. 6 invariant: 3*sigma(kT/C) == LSB/2 at the sized C."""
        capacitance = units.capacitance_for_resolution(swing, bits)
        sigma = units.thermal_noise_voltage(capacitance)
        lsb = swing / 2 ** bits
        assert 3 * sigma == pytest.approx(lsb / 2, rel=1e-9)

    @given(bits=st.integers(min_value=1, max_value=15),
           swing=st.floats(min_value=0.1, max_value=3.3))
    def test_one_extra_bit_quadruples_capacitance(self, bits, swing):
        low = units.capacitance_for_resolution(swing, bits)
        high = units.capacitance_for_resolution(swing, bits + 1)
        assert high == pytest.approx(4 * low, rel=1e-9)


class TestCellProperties:
    @given(caps=st.lists(
        st.tuples(st.floats(min_value=1e-16, max_value=1e-11),
                  st.floats(min_value=0.0, max_value=3.3)),
        min_size=1, max_size=8))
    def test_dynamic_energy_is_sum_cv2(self, caps):
        cell = DynamicCell("c", caps)
        expected = sum(c * v ** 2 for c, v in caps)
        assert cell.energy(1e-6) == pytest.approx(expected)

    @given(load=st.floats(min_value=1e-15, max_value=1e-11),
           swing=st.floats(min_value=0.01, max_value=2.0),
           vdda=st.floats(min_value=0.5, max_value=3.3),
           delay=st.floats(min_value=1e-9, max_value=1e-2))
    def test_direct_drive_energy_is_delay_invariant(self, load, swing,
                                                    vdda, delay):
        """Eq. 9: E = Cload * Vswing * Vdda regardless of speed."""
        cell = StaticCell.direct_drive("sf", load, swing, vdda=vdda)
        assert cell.energy(delay) == pytest.approx(load * swing * vdda)

    @given(load=st.floats(min_value=1e-15, max_value=1e-12),
           gain=st.floats(min_value=0.5, max_value=10.0),
           delay=st.floats(min_value=1e-8, max_value=1e-3),
           hold_factor=st.floats(min_value=1.0, max_value=1e4))
    def test_gm_id_energy_linear_in_hold_time(self, load, gain, delay,
                                              hold_factor):
        cell = StaticCell.gm_id_biased("amp", load, gain)
        base = cell.energy(delay, static_time=delay)
        held = cell.energy(delay, static_time=delay * hold_factor)
        assert held == pytest.approx(base * hold_factor, rel=1e-9)


class TestScalingProperties:
    @given(a=nodes, b=nodes)
    def test_energy_scaling_reversible(self, a, b):
        there = scale_energy(1.0, a, b)
        back = scale_energy(there, b, a)
        assert back == pytest.approx(1.0, rel=1e-12)

    @given(a=nodes, b=nodes, c=nodes)
    def test_energy_scaling_transitive(self, a, b, c):
        via = scale_energy(scale_energy(1.0, a, b), b, c)
        direct = scale_energy(1.0, a, c)
        assert via == pytest.approx(direct, rel=1e-12)

    @given(a=nodes, b=nodes)
    def test_leakage_scaling_reversible(self, a, b):
        there = scale_leakage_power(1.0, a, b)
        assert scale_leakage_power(there, b, a) == pytest.approx(1.0)

    @given(node=nodes)
    def test_scaling_factors_positive(self, node):
        assert scale_energy(1.0, 65, node) > 0


class TestMemlibProperties:
    @settings(max_examples=30)
    @given(kb=st.integers(min_value=1, max_value=4096),
           node=nodes)
    def test_sram_scalars_positive(self, kb, node):
        sram = SRAMModel(capacity_bytes=kb * units.KB, node_nm=node)
        assert sram.read_energy_per_word > 0
        assert sram.write_energy_per_word > sram.read_energy_per_word
        assert sram.leakage_power > 0
        assert sram.area > 0

    @settings(max_examples=30)
    @given(kb=st.integers(min_value=1, max_value=2048))
    def test_sram_leakage_linear_in_capacity(self, kb):
        small = SRAMModel(capacity_bytes=kb * units.KB)
        double = SRAMModel(capacity_bytes=2 * kb * units.KB)
        assert double.leakage_power == pytest.approx(
            2 * small.leakage_power)


class TestFomProperties:
    @given(rate=st.floats(min_value=1e3, max_value=1e10))
    def test_fom_positive(self, rate):
        assert walden_fom(rate) > 0

    @given(rate=st.floats(min_value=1e3, max_value=1e9),
           bits=st.integers(min_value=1, max_value=14))
    def test_conversion_energy_exponential_in_bits(self, rate, bits):
        single = adc_energy_per_conversion(rate, bits)
        double = adc_energy_per_conversion(rate, bits + 1)
        assert double == pytest.approx(2 * single, rel=1e-9)


class TestArrayProperties:
    @settings(max_examples=30)
    @given(ops=st.floats(min_value=1.0, max_value=1e7),
           count=st.integers(min_value=1, max_value=4096))
    def test_eq3_access_counts(self, ops, count):
        array = AnalogArray("A")
        array.add_component(ColumnADC(energy_per_conversion=1e-12),
                            (1, count))
        accesses = array.component_access_counts(ops)
        assert accesses["ADC"] == pytest.approx(ops / count)

    @settings(max_examples=30)
    @given(ops=st.floats(min_value=1.0, max_value=1e6),
           scale=st.integers(min_value=2, max_value=10))
    def test_energy_linear_in_ops_at_fixed_per_access_energy(self, ops,
                                                             scale):
        array = AnalogArray("A")
        array.add_component(ColumnADC(energy_per_conversion=1e-12), (1, 8))
        single = array.energy(ops, 1e-3)
        scaled = array.energy(ops * scale, 1e-3)
        assert scaled == pytest.approx(single * scale, rel=1e-9)


class TestMemoryProperties:
    @settings(max_examples=30)
    @given(pixels=st.floats(min_value=0, max_value=1e7),
           energy=st.floats(min_value=0, max_value=1e-11),
           packing=st.integers(min_value=1, max_value=16))
    def test_fifo_energy_linear_and_packed(self, pixels, energy, packing):
        fifo = FIFO("F", size=(1, 64),
                    write_energy_per_word=energy,
                    read_energy_per_word=energy,
                    pixels_per_write_word=packing)
        assert fifo.write_energy(pixels) == pytest.approx(
            pixels / packing * energy)


class TestTimingProperties:
    @given(fps=st.floats(min_value=1.0, max_value=10000.0),
           latency_fraction=st.floats(min_value=0.0, max_value=0.95),
           arrays=st.integers(min_value=0, max_value=8))
    def test_frame_budget_identity(self, fps, latency_fraction, arrays):
        """N_slots * T_A + T_D == T_FR always holds (Fig. 6)."""
        frame_time = 1.0 / fps
        digital = frame_time * latency_fraction
        timing = estimate_frame_timing(fps, digital, arrays)
        assert (timing.analog_total_time + timing.digital_latency
                == pytest.approx(timing.frame_time, rel=1e-9))

    @given(fps=st.floats(min_value=1.0, max_value=1000.0),
           overrun=st.floats(min_value=1.0, max_value=10.0))
    def test_digital_overrun_always_rejected(self, fps, overrun):
        frame_time = 1.0 / fps
        with pytest.raises(TimingError):
            estimate_frame_timing(fps, frame_time * overrun, 2)


class TestDagProperties:
    @settings(max_examples=30)
    @given(length=st.integers(min_value=1, max_value=12))
    def test_linear_chain_topological_order(self, length):
        source = PixelInput((16, 16, 1), name="Input")
        stages = [source]
        previous = source
        for index in range(length):
            stage = ProcessStage(f"S{index}", input_size=(16, 16, 1),
                                 kernel=(1, 1, 1), stride=(1, 1, 1))
            stage.set_input_stage(previous)
            stages.append(stage)
            previous = stage
        graph = StageGraph(stages)
        order = [s.name for s in graph.topological_order]
        for index in range(length):
            assert order.index(f"S{index}") > order.index("Input")
            if index:
                assert order.index(f"S{index}") > order.index(
                    f"S{index - 1}")
        assert [s.name for s in graph.sinks] == [f"S{length - 1}"]


class TestReportProperties:
    @settings(max_examples=30)
    @given(energies=st.lists(st.floats(min_value=0, max_value=1e-3),
                             min_size=1, max_size=20),
           fps=st.floats(min_value=1, max_value=1000))
    def test_total_is_sum_of_categories(self, energies, fps):
        report = EnergyReport(system_name="S", frame_rate=fps,
                              frame_time=1 / fps, digital_latency=0.0,
                              analog_stage_delay=1e-3)
        categories = list(Category)
        for index, energy in enumerate(energies):
            report.add(EnergyEntry(f"c{index}",
                                   categories[index % len(categories)],
                                   "sensor", energy))
        assert sum(report.by_category().values()) == pytest.approx(
            report.total_energy)
        assert report.total_power == pytest.approx(
            report.total_energy * fps)
