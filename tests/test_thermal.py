"""Tests for the thermal coupling loop (the paper's declared future work)."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.noise import (
    FunctionalPixel,
    imaging_snr_at_operating_point,
    thermal_operating_point,
)
from repro.noise.thermal import AMBIENT_K
from repro.usecases import UseCaseConfig, run_edgaze
from repro.usecases.edgaze import build_edgaze


def _point(placement, node=65):
    config = UseCaseConfig(placement, node)
    _, system, _ = build_edgaze(config)
    report = run_edgaze(config)
    return system, report


class TestOperatingPoint:
    def test_temperature_rises_with_density(self):
        cool_system, cool_report = _point("2D-Off")
        hot_system, hot_report = _point("2D-In")
        cool = thermal_operating_point(cool_system, cool_report)
        hot = thermal_operating_point(hot_system, hot_report)
        assert hot.temperature_rise > cool.temperature_rise
        assert hot.temperature > AMBIENT_K

    def test_stacking_cools_the_hotspot(self):
        """Finding 2's flip side at 65 nm: 3D avoids the leaky 2D hotspot."""
        flat_system, flat_report = _point("2D-In")
        stacked_system, stacked_report = _point("3D-In")
        flat = thermal_operating_point(flat_system, flat_report)
        stacked = thermal_operating_point(stacked_system, stacked_report)
        assert stacked.temperature_rise < flat.temperature_rise

    def test_rise_linear_in_thermal_resistance(self):
        system, report = _point("2D-In")
        single = thermal_operating_point(system, report,
                                         thermal_resistance=1.0)
        double = thermal_operating_point(system, report,
                                         thermal_resistance=2.0)
        assert double.temperature_rise == pytest.approx(
            2 * single.temperature_rise)

    def test_rejects_bad_resistance(self):
        system, report = _point("2D-In")
        with pytest.raises(ConfigurationError):
            thermal_operating_point(system, report, thermal_resistance=0.0)

    def test_describe(self):
        system, report = _point("2D-In")
        text = thermal_operating_point(system, report).describe()
        assert "mW/mm^2" in text and "K" in text


class TestImagingImpact:
    def test_hot_architecture_hurts_low_light_snr(self):
        """The Sec. 6.2 conjecture, quantified: the dense 2D-In design
        images worse in the dark than the off-sensor baseline."""
        pixel = FunctionalPixel(dark_current_e_per_s=2000.0)
        cool_system, cool_report = _point("2D-Off")
        hot_system, hot_report = _point("2D-In")
        cool_snr = imaging_snr_at_operating_point(
            cool_system, cool_report, pixel, seed=3)
        hot_snr = imaging_snr_at_operating_point(
            hot_system, hot_report, pixel, seed=3)
        assert hot_snr < cool_snr

    def test_bright_scenes_barely_affected(self):
        """Shot noise dominates in bright light; thermal rise is benign."""
        pixel = FunctionalPixel(dark_current_e_per_s=2000.0)
        cool_system, cool_report = _point("2D-Off")
        hot_system, hot_report = _point("2D-In")
        cool_snr = imaging_snr_at_operating_point(
            cool_system, cool_report, pixel,
            illumination_electrons=8000, seed=3)
        hot_snr = imaging_snr_at_operating_point(
            hot_system, hot_report, pixel,
            illumination_electrons=8000, seed=3)
        assert abs(cool_snr - hot_snr) < 1.0
