"""Tests for the analog/digital/communication energy models (Eqs. 1-17)."""

import pytest

from repro import units
from repro.energy.analog_model import analog_energy, analog_usage
from repro.energy.comm_model import communication_energy, communication_volume
from repro.energy.digital_model import digital_energy
from repro.energy.report import Category
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogMAC,
    ColumnADC,
)
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER
from repro.sim.cycle_sim import simulate_digital
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage

from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)


class TestAnalogUsage:
    def test_fig5_pixel_array_ops(self):
        """Binning: 1024 primitive adds / 4 per shared-pixel access = 256."""
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        usages = {u.array.name: u
                  for u in analog_usage(graph, system,
                                        Mapping(FIG5_MAPPING))}
        assert usages["PixelArray"].ops == pytest.approx(256)

    def test_fig5_adc_ops_propagate(self):
        """The unmapped ADC array converts the 256 binned pixels."""
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        usages = {u.array.name: u
                  for u in analog_usage(graph, system,
                                        Mapping(FIG5_MAPPING))}
        assert usages["ADCArray"].ops == pytest.approx(256)

    def test_stage_attribution(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        usages = {u.array.name: u
                  for u in analog_usage(graph, system,
                                        Mapping(FIG5_MAPPING))}
        assert usages["PixelArray"].stage_name == "Binning"

    def test_pixel_input_only_array(self):
        """Pure imaging: ops = pixel count."""
        source = PixelInput((32, 32, 1), name="Input")
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (32, 32))
        system.add_analog_array(pixels)
        graph = StageGraph([source])
        usages = analog_usage(graph, system, Mapping({"Input": "Pixels"}))
        assert usages[0].ops == pytest.approx(1024)


class TestAnalogEnergy:
    def test_entries_tagged_with_category_and_layer(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        entries = analog_energy(graph, system, Mapping(FIG5_MAPPING),
                                analog_stage_delay=5e-3)
        assert entries, "expected analog energy entries"
        assert all(e.category is Category.SEN for e in entries)
        assert all(e.layer == SENSOR_LAYER for e in entries)

    def test_compute_array_categorized_comp_a(self):
        source = PixelInput((8, 8, 1), name="Input")
        conv = ProcessStage("Conv", input_size=(8, 8, 1), kernel=(2, 2, 1),
                            stride=(2, 2, 1))
        conv.set_input_stage(source)
        system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
        pixels = AnalogArray("Pixels")
        pixels.add_component(ActivePixelSensor(), (8, 8))
        macs = AnalogArray("MACs")
        macs.add_component(AnalogMAC(kernel_volume=4), (1, 8))
        pixels.set_output(macs)
        system.add_analog_array(pixels)
        system.add_analog_array(macs)
        entries = analog_energy(StageGraph([source, conv]), system,
                                Mapping({"Input": "Pixels", "Conv": "MACs"}),
                                analog_stage_delay=5e-3)
        categories = {e.name: e.category for e in entries}
        assert categories["MACs/AnalogMAC"] is Category.COMP_A
        assert categories["Pixels/APS"] is Category.SEN

    def test_energy_scales_with_resolution(self):
        """A larger pixel array burns proportionally more sensing energy."""

        def build(n):
            source = PixelInput((n, n, 1), name="Input")
            system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65)])
            pixels = AnalogArray("Pixels")
            pixels.add_component(ActivePixelSensor(), (n, n))
            system.add_analog_array(pixels)
            graph = StageGraph([source])
            entries = analog_energy(graph, system,
                                    Mapping({"Input": "Pixels"}),
                                    analog_stage_delay=5e-3)
            return sum(e.energy for e in entries)

        assert build(64) == pytest.approx(4 * build(32), rel=0.01)


class TestDigitalEnergy:
    def test_fig5_digital_entries(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        mapping = Mapping(FIG5_MAPPING)
        timeline = simulate_digital(graph, system, mapping)
        entries = digital_energy(system, timeline, frame_time=1 / 30)
        by_name = {e.name: e for e in entries}
        assert by_name["EdgeUnit"].category is Category.COMP_D
        # 257 cycles at 3 pJ
        assert by_name["EdgeUnit"].energy == pytest.approx(
            257 * 3 * units.pJ)
        # line buffer: 256 writes + 768 reads at 0.3 pJ/word
        assert by_name["LineBuffer"].energy == pytest.approx(
            (256 + 768) * 0.3 * units.pJ)

    def test_leakage_included(self):
        graph = StageGraph(build_fig5_stages())
        system = build_fig5_system()
        mapping = Mapping(FIG5_MAPPING)
        leaky = system.find_unit("LineBuffer")
        leaky.leakage_power = 1 * units.uW
        timeline = simulate_digital(graph, system, mapping)
        entries = digital_energy(system, timeline, frame_time=1 / 30)
        buf = [e for e in entries if e.name == "LineBuffer"][0]
        expected_leak = 1e-6 / 30
        assert buf.energy == pytest.approx(
            (256 + 768) * 0.3 * units.pJ + expected_leak)


def _cross_layer_setup(off_chip=False):
    """Input on the sensor layer, processing on another layer."""
    source = PixelInput((16, 16, 1), name="Input")
    stage = ProcessStage("Proc", input_size=(16, 16, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1))
    stage.set_input_stage(source)
    layers = [Layer(SENSOR_LAYER, 65)]
    target_layer = SENSOR_LAYER
    system = SensorSystem("S", layers=layers)
    if off_chip:
        system.add_offchip_host(22)
        target_layer = "off_chip"
    else:
        system.add_layer(Layer(COMPUTE_LAYER, 22))
        target_layer = COMPUTE_LAYER
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (16, 16))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(), (1, 16))
    pixels.set_output(adcs)
    fifo = FIFO("F", target_layer, size=(1, 64), write_energy_per_word=0,
                read_energy_per_word=0)
    adcs.set_output(fifo)
    unit = ComputeUnit("PE", target_layer, input_pixels_per_cycle=(1, 1),
                       output_pixels_per_cycle=(1, 1),
                       energy_per_cycle=1e-12)
    unit.set_input(fifo)
    unit.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(fifo)
    system.add_compute_unit(unit)
    graph = StageGraph([source, stage])
    mapping = Mapping({"Input": "Pixels", "Proc": "PE"})
    return graph, system, mapping


class TestCommunicationEnergy:
    def test_interlayer_crossing_uses_utsv(self):
        graph, system, mapping = _cross_layer_setup(off_chip=False)
        entries = communication_energy(graph, system, mapping)
        utsv = [e for e in entries if e.category is Category.UTSV]
        assert len(utsv) == 1
        assert utsv[0].energy == pytest.approx(256 * 1 * units.pJ)

    def test_offchip_crossing_uses_mipi(self):
        graph, system, mapping = _cross_layer_setup(off_chip=True)
        entries = communication_energy(graph, system, mapping)
        mipi = [e for e in entries if e.category is Category.MIPI]
        # Only the sensor->SoC hop: the sink already sits off-chip.
        assert len(mipi) == 1
        assert mipi[0].energy == pytest.approx(256 * 100 * units.pJ)

    def test_onchip_sink_ships_result_over_mipi(self):
        graph, system, mapping = _cross_layer_setup(off_chip=False)
        entries = communication_energy(graph, system, mapping)
        mipi = [e for e in entries if e.category is Category.MIPI]
        assert len(mipi) == 1
        assert "host" in mipi[0].name

    def test_mipi_dominates_utsv(self):
        """100 pJ/B vs 1 pJ/B: off-chip is two orders costlier."""
        graph_in, system_in, mapping_in = _cross_layer_setup(off_chip=False)
        graph_off, system_off, mapping_off = _cross_layer_setup(off_chip=True)
        utsv_energy = sum(
            e.energy for e in communication_energy(graph_in, system_in,
                                                   mapping_in)
            if e.category is Category.UTSV)
        mipi_energy = sum(
            e.energy for e in communication_energy(graph_off, system_off,
                                                   mapping_off)
            if e.category is Category.MIPI)
        assert mipi_energy == pytest.approx(100 * utsv_energy)

    def test_communication_volume(self):
        graph, system, mapping = _cross_layer_setup(off_chip=False)
        volumes = communication_volume(graph, system, mapping)
        assert volumes["utsv"] == pytest.approx(256)
        assert volumes["mipi"] == pytest.approx(256)

    def test_output_compression_shrinks_mipi(self):
        graph, system, mapping = _cross_layer_setup(off_chip=False)
        stage = graph.get("Proc")
        stage.output_compression = 0.5
        entries = communication_energy(graph, system, mapping)
        mipi = [e for e in entries if e.category is Category.MIPI][0]
        assert mipi.energy == pytest.approx(128 * 100 * units.pJ)
