"""Workload-parameter exactness: the Sec. 6 numbers as the paper states them."""

import pytest

from repro import units
from repro.sw.dag import StageGraph
from repro.usecases import UseCaseConfig
from repro.usecases.edgaze import DNN_MACS, ROI_FRACTION, edgaze_stages
from repro.usecases.edgaze import build_edgaze
from repro.usecases.rhythmic import (
    NUM_PE_LANES,
    ROI_COMPRESSION,
    TOTAL_OPS,
    build_rhythmic,
)


class TestRhythmicWorkload:
    def test_1280x720_pixel_array(self):
        stages, system, _ = build_rhythmic(UseCaseConfig("2D-In", 65))
        assert stages[0].output_pixels == 1280 * 720
        assert system.pixel_array_dims == (720, 1280)

    def test_paper_op_count(self):
        """~7.4e6 arithmetic operations per frame (Sec. 6.1)."""
        stages, _, _ = build_rhythmic(UseCaseConfig("2D-In", 65))
        encode = stages[1]
        assert encode.total_ops == pytest.approx(TOTAL_OPS, rel=1e-6)
        assert TOTAL_OPS == 7.4e6

    def test_roi_halves_output(self):
        """'reduces the image size by 50%' (Sec. 6.1)."""
        stages, _, _ = build_rhythmic(UseCaseConfig("2D-In", 65))
        encode = stages[1]
        assert ROI_COMPRESSION == 0.5
        assert encode.output_bytes == pytest.approx(0.5 * 1280 * 720)

    def test_fig8a_structures(self):
        """Fig. 8a: ADC 1x1280, FIFO 1x2560, 16 digital PE lanes."""
        _, system, _ = build_rhythmic(UseCaseConfig("2D-In", 65))
        assert system.find_unit("ADCArray").num_components == 1280
        assert system.find_unit("PixelFIFO").capacity_pixels == 2560
        assert NUM_PE_LANES == 16

    def test_off_chip_placement_moves_units(self):
        _, system, _ = build_rhythmic(UseCaseConfig("2D-Off", 65))
        assert system.find_unit("CompareSamplePE").layer == "off_chip"
        assert system.find_unit("PixelFIFO").layer == "off_chip"

    def test_3d_placement_uses_compute_layer(self):
        _, system, _ = build_rhythmic(UseCaseConfig("3D-In", 130))
        assert system.find_unit("CompareSamplePE").layer == "compute"
        assert system.layers["compute"].node_nm == 22
        assert system.layers["sensor"].node_nm == 130


class TestEdGazeWorkload:
    def test_640x400_pixel_array(self):
        stages = edgaze_stages()
        assert stages[0].output_pixels == 640 * 400

    def test_paper_mac_count(self):
        """~5.76e7 MAC operations per frame (Sec. 6.1)."""
        stages = edgaze_stages()
        dnn = stages[-1]
        assert dnn.num_macs == pytest.approx(DNN_MACS, rel=1e-6)
        assert DNN_MACS == 5.76e7

    def test_roi_is_75_percent_of_frame(self):
        """'reduces the image size by 25%' => ROI ships 75 % of it."""
        stages = edgaze_stages()
        dnn = stages[-1]
        full_frame_bytes = 640 * 400
        assert ROI_FRACTION == 0.75
        assert dnn.output_bytes == pytest.approx(
            ROI_FRACTION * full_frame_bytes)

    def test_fig8b_frame_buffer_holds_downsampled_frame(self):
        """Fig. 8b: the frame buffer stores the 2x2-downsampled frame."""
        _, system, _ = build_edgaze(UseCaseConfig("2D-In", 65))
        frame_buffer = system.find_unit("FrameBuffer")
        assert frame_buffer.capacity_bytes == 200 * 320

    def test_fig8b_dnn_pe_grid(self):
        """Fig. 8b: Digital PE 3 is a 16x16 grid."""
        _, system, _ = build_edgaze(UseCaseConfig("2D-In", 65))
        assert system.find_unit("DNNArray").dimensions == (16, 16)

    def test_event_map_is_binary(self):
        stages = edgaze_stages()
        subtract = stages[2]
        assert subtract.bits_per_pixel == 1

    def test_dag_is_linear_chain(self):
        graph = StageGraph(edgaze_stages())
        assert [s.name for s in graph.topological_order] == \
            ["Input", "Downsample", "FrameSubtract", "RoiDNN"]

    def test_stt_config_swaps_both_buffers(self):
        sram_sys = build_edgaze(UseCaseConfig("3D-In", 65))[1]
        stt_sys = build_edgaze(UseCaseConfig("3D-In-STT", 65))[1]
        for buffer_name in ("FrameBuffer", "DNNBuffer"):
            sram_leak = sram_sys.find_unit(buffer_name).leakage_power
            stt_leak = stt_sys.find_unit(buffer_name).leakage_power
            assert stt_leak < 0.05 * sram_leak, buffer_name
