"""Focused tests for the communication model (Eq. 17) and layer routing."""

import pytest

from repro import units
from repro.energy.comm_model import (
    _layer_path,
    communication_energy,
    communication_volume,
)
from repro.energy.report import Category
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage


class TestLayerPath:
    class _Unit:
        def __init__(self, layer, memories=()):
            self.layer = layer
            self.input_memories = list(memories)

    class _Memory:
        def __init__(self, layer):
            self.layer = layer

    def test_same_layer_no_hops(self):
        a = self._Unit("sensor")
        b = self._Unit("sensor", [self._Memory("sensor")])
        assert _layer_path(a, b) == ["sensor"]

    def test_direct_crossing(self):
        a = self._Unit("sensor")
        b = self._Unit("compute", [self._Memory("compute")])
        assert _layer_path(a, b) == ["sensor", "compute"]

    def test_intermediate_memory_layer(self):
        """Pixel layer -> DRAM-layer memory -> logic-layer consumer."""
        a = self._Unit("sensor")
        b = self._Unit("logic", [self._Memory("dram")])
        assert _layer_path(a, b) == ["sensor", "dram", "logic"]

    def test_memory_on_consumer_layer_collapses(self):
        a = self._Unit("sensor")
        b = self._Unit("logic", [self._Memory("logic")])
        assert _layer_path(a, b) == ["sensor", "logic"]

    def test_analog_consumer_without_memories(self):
        a = self._Unit("sensor")
        b = AnalogArray("B", COMPUTE_LAYER)
        assert _layer_path(a, b) == ["sensor", "compute"]


def _two_layer_setup(bits=8):
    source = PixelInput((16, 16, 1), name="Input", bits_per_pixel=bits)
    stage = ProcessStage("Proc", input_size=(16, 16, 1), kernel=(1, 1, 1),
                         stride=(1, 1, 1), bits_per_pixel=bits)
    stage.set_input_stage(source)
    system = SensorSystem("S", layers=[Layer(SENSOR_LAYER, 65),
                                       Layer(COMPUTE_LAYER, 22)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (16, 16))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(), (1, 16))
    pixels.set_output(adcs)
    fifo = FIFO("F", COMPUTE_LAYER, size=(1, 64),
                write_energy_per_word=0, read_energy_per_word=0)
    adcs.set_output(fifo)
    pe = ComputeUnit("PE", COMPUTE_LAYER, input_pixels_per_cycle=(1, 1),
                     output_pixels_per_cycle=(1, 1), energy_per_cycle=0)
    pe.set_input(fifo)
    pe.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(fifo)
    system.add_compute_unit(pe)
    graph = StageGraph([source, stage])
    mapping = Mapping({"Input": "Pixels", "Proc": "PE"})
    return graph, system, mapping


class TestCommEnergy:
    def test_bit_depth_scales_crossing_bytes(self):
        graph8, system8, mapping8 = _two_layer_setup(bits=8)
        graph16, system16, mapping16 = _two_layer_setup(bits=16)
        utsv8 = sum(e.energy for e in
                    communication_energy(graph8, system8, mapping8)
                    if e.category is Category.UTSV)
        utsv16 = sum(e.energy for e in
                     communication_energy(graph16, system16, mapping16)
                     if e.category is Category.UTSV)
        assert utsv16 == pytest.approx(2 * utsv8)

    def test_volume_accounting(self):
        graph, system, mapping = _two_layer_setup()
        volumes = communication_volume(graph, system, mapping)
        assert volumes["utsv"] == pytest.approx(256)   # full frame crosses
        assert volumes["mipi"] == pytest.approx(256)   # sink ships result

    def test_custom_interface_pricing(self):
        from repro.hw.interface import Interface
        graph, system, mapping = _two_layer_setup()
        system.set_interlayer_interface(
            Interface("hybrid-bond", 0.5 * units.pJ))
        utsv = sum(e.energy for e in
                   communication_energy(graph, system, mapping)
                   if e.category is Category.UTSV)
        assert utsv == pytest.approx(256 * 0.5 * units.pJ)

    def test_free_interface_yields_zero_energy(self):
        from repro.hw.interface import Interface
        graph, system, mapping = _two_layer_setup()
        system.set_offchip_interface(Interface("pads", 0.0))
        mipi = sum(e.energy for e in
                   communication_energy(graph, system, mapping)
                   if e.category is Category.MIPI)
        assert mipi == 0.0
