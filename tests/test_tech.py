"""Tests for the process-technology scaling substrate."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.tech import (
    NODE_TABLE,
    REFERENCE_MAC_ENERGY_65NM,
    SUPPORTED_NODES,
    get_node,
    mac_energy,
    scale_area,
    scale_delay,
    scale_energy,
    scale_leakage_power,
)


class TestNodeTable:
    def test_reference_node_is_normalized(self):
        node = get_node(65)
        assert node.energy_factor == pytest.approx(1.0)
        assert node.leakage_factor == pytest.approx(1.0)
        assert node.area_factor == pytest.approx(1.0)
        assert node.delay_factor == pytest.approx(1.0)

    def test_all_common_cis_nodes_supported(self):
        for node_nm in (180, 130, 110, 90, 65, 45, 28, 22, 14, 7):
            assert get_node(node_nm).feature_nm == node_nm

    def test_unknown_node_rejected_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="supported nodes"):
            get_node(33)

    def test_lookup_tolerates_float_keys(self):
        assert get_node(65.0).feature_nm == 65.0

    def test_vdd_monotonically_non_increasing(self):
        vdds = [NODE_TABLE[n].vdd for n in sorted(NODE_TABLE, reverse=True)]
        assert vdds == sorted(vdds, reverse=True)

    def test_dynamic_energy_monotonically_decreasing_with_node(self):
        factors = [NODE_TABLE[n].energy_factor
                   for n in sorted(NODE_TABLE, reverse=True)]
        assert factors == sorted(factors, reverse=True)

    def test_leakage_peaks_at_65nm(self):
        """The pre-high-k leakage anomaly the paper cites [20]."""
        peak = max(NODE_TABLE, key=lambda n: NODE_TABLE[n].leakage_factor)
        assert peak == 65

    def test_65nm_leaks_more_than_130_and_22(self):
        assert NODE_TABLE[65].leakage_factor > NODE_TABLE[130].leakage_factor
        assert NODE_TABLE[65].leakage_factor > NODE_TABLE[22].leakage_factor

    def test_supported_nodes_sorted(self):
        assert list(SUPPORTED_NODES) == sorted(SUPPORTED_NODES)


class TestScaling:
    def test_identity_scaling(self):
        assert scale_energy(3.0, 65, 65) == pytest.approx(3.0)

    def test_energy_scaling_is_reversible(self):
        down = scale_energy(1.0, 130, 22)
        assert scale_energy(down, 22, 130) == pytest.approx(1.0)

    def test_scaling_down_nodes_reduces_energy(self):
        assert scale_energy(1.0, 65, 22) < 1.0
        assert scale_energy(1.0, 130, 65) < 1.0

    def test_scaling_up_nodes_increases_energy(self):
        assert scale_energy(1.0, 65, 130) > 1.0

    def test_leakage_scaling_non_monotonic(self):
        """130 nm -> 65 nm leakage goes UP; 65 nm -> 22 nm goes down."""
        assert scale_leakage_power(1.0, 130, 65) > 1.0
        assert scale_leakage_power(1.0, 65, 22) < 1.0

    def test_area_scaling_quadratic(self):
        ratio = scale_area(1.0, 130, 65)
        assert ratio == pytest.approx((65 / 130) ** 2)

    def test_delay_scaling_linear(self):
        assert scale_delay(1.0, 130, 65) == pytest.approx(65 / 130)

    def test_transitivity(self):
        via_90 = scale_energy(scale_energy(1.0, 180, 90), 90, 22)
        direct = scale_energy(1.0, 180, 22)
        assert via_90 == pytest.approx(direct)


class TestMacEnergy:
    def test_reference_at_65nm(self):
        assert mac_energy(65) == pytest.approx(REFERENCE_MAC_ENERGY_65NM)

    def test_order_of_magnitude_is_pj(self):
        assert 0.1 * units.pJ < mac_energy(65) < 10 * units.pJ

    def test_22nm_mac_is_several_times_cheaper(self):
        ratio = mac_energy(65) / mac_energy(22)
        assert 2.0 < ratio < 10.0

    def test_180nm_mac_is_much_more_expensive(self):
        assert mac_energy(180) > 3 * mac_energy(65)
